"""Unit tests for the shared-memory column store (``repro.engine.shm``)
and the cross-shard sub-plan cache (``repro.parallel.plan_cache``).

Covers the exact-value codec contract (the determinism guarantee rests on
it), segment lifecycle including the crash/sweep paths, engine adoption
equivalence, and the publish/fetch/race protocol of the plan cache.
The fork-vs-spawn and whole-suite leak checks live in
``tests/test_parallel_differential.py``; CI's spawn job re-runs both.
"""

import math
import pickle
import struct

import pytest

from repro.benchmarks import all_tasks, get_task
from repro.engine import HAVE_NUMPY, make_engine, shm
from repro.lang.ast import Env, TableRef
from repro.lang.size import operator_count
from repro.parallel.plan_cache import (
    MIN_SHARED_OPERATORS,
    LocalPlanCache,
    ProcessPlanClient,
    plan_digest,
)

#: A quiet NaN with a non-default payload: only a bit-exact f8 round trip
#: preserves it (``==`` can't check NaN, so tests compare packed bytes).
PAYLOAD_NAN = struct.unpack("<d", b"\x01\x02\x03\x04\x05\x06\xf9\x7f")[0]


def roundtrip(column):
    """Encode one column into a store, decode it back, clean up fully."""
    with shm.ShmStore() as store:
        handle = store.publish_block([column], len(column))
        with shm.Attachment() as attachment:
            [decoded] = shm.decode_block(handle, attachment)
            return decoded, handle.columns[0]


class TestCodecs:
    def test_int_column_exact(self):
        column = [0, 1, -1, 2**52, -(2**52), 2**63 - 1, -(2**63)]
        decoded, meta = roundtrip(column)
        assert decoded == column
        assert meta.tag == "i8"
        assert all(type(v) is int for v in decoded)

    def test_int_beyond_int64_falls_back_to_obj(self):
        column = [1, 2**63]      # second cell overflows the typed buffer
        decoded, meta = roundtrip(column)
        assert decoded == column
        assert meta.tag == "obj"

    def test_float_column_bit_exact(self):
        column = [0.0, -0.0, 1.5, math.inf, -math.inf, PAYLOAD_NAN]
        decoded, meta = roundtrip(column)
        assert meta.tag == "f8"
        assert struct.pack(f"<{len(column)}d", *decoded) == \
            struct.pack(f"<{len(column)}d", *column)
        # Signed zero survives even though -0.0 == 0.0.
        assert math.copysign(1.0, decoded[1]) < 0

    def test_str_column_exact_including_nuls(self):
        column = ["", "a", "a\x00", "\x00", "héllo", "日本語", "a" * 40]
        decoded, meta = roundtrip(column)
        assert decoded == column
        assert meta.tag == "u4"

    def test_bool_and_mixed_columns_take_object_path(self):
        # type() identity keeps bool out of int columns (True == 1 but
        # sorts in a different class) — both must survive exactly.
        for column in ([True, False], [1, "a"], [None, None], [1, 2.0]):
            decoded, meta = roundtrip(column)
            assert decoded == column
            assert meta.tag == "obj"

    def test_empty_column(self):
        decoded, meta = roundtrip([])
        assert decoded == []
        assert meta.tag == "obj"

    def test_unknown_codec_rejected(self):
        meta = shm.ColumnMeta("zstd", 0, 0, 0)
        with pytest.raises(ValueError, match="zstd"):
            shm.decode_column(meta, b"")


class TestNdSafety:
    """``nd_safe`` must replicate the NumPy classify rules at encode time."""

    SAFE = ([1, 2, 3], [2**52, -(2**52)], [0.5, -1.25], ["a", "bc"])
    UNSAFE = ([2**52 + 1], [-(2**52) - 1],      # beyond exact-int range
              [0.0, -0.0], [math.nan], [math.inf],
              ["a\x00"], ["", ""])              # NUL / zero-width strings

    @pytest.mark.parametrize("column", SAFE)
    def test_safe_columns_flagged(self, column):
        _, meta = roundtrip(column)
        assert meta.nd_safe

    @pytest.mark.parametrize("column", UNSAFE)
    def test_unsafe_columns_not_flagged(self, column):
        _, meta = roundtrip(column)
        assert not meta.nd_safe

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")
    @pytest.mark.parametrize("column", SAFE + UNSAFE)
    def test_never_claims_more_than_classify_column(self, column):
        """``nd_safe`` must imply the classify rules would type the
        column too — never the reverse (zero-width string columns are
        classifiable via a copy but have no valid zero-copy view, so shm
        stays strictly more conservative)."""
        from repro.engine.numpy_kernels import classify_column

        _, meta = roundtrip(column)
        if meta.nd_safe:
            assert not classify_column(column).is_object

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")
    def test_nd_views_alias_and_match_decoded_values(self):
        columns = [[1, 2, 3], [0.5, 1.5, -2.5], ["aa", "b", "ccc"],
                   [True, False, True]]
        with shm.ShmStore() as store:
            handle = store.publish_block(columns, 3)
            with shm.Attachment() as attachment:
                views = shm.nd_views(handle, attachment)
                assert list(views[0]) == columns[0]
                assert list(views[1]) == columns[1]
                assert list(views[2]) == columns[2]
                assert views[3] is None        # obj is never nd_safe
                assert not views[0].flags.writeable
                # Masked blocks never get views (a view of the full
                # buffer would disagree with the selected rows).
                masked = shm.BlockHandle(handle.segment, 3, handle.columns,
                                         handle.nbytes, row_mask=(0, 2))
                assert shm.nd_views(masked, attachment) == [None] * 4
                del views


class TestEnvRoundTrip:
    def test_env_equal_and_hash_equal(self):
        task = get_task("fh02_region_quarter_share")
        with shm.ShmStore() as store:
            handle = store.publish_env(task.env)
            assert isinstance(pickle.loads(pickle.dumps(handle)),
                              shm.EnvHandle)
            with shm.Attachment() as attachment:
                rebuilt = shm.attach_env(handle, attachment)
                assert rebuilt == task.env
                assert hash(rebuilt) == hash(task.env)
                assert rebuilt is not task.env

    def test_row_mask_selects_rows(self):
        with shm.ShmStore() as store:
            handle = store.publish_block([[10, 20, 30], ["a", "b", "c"]],
                                         3, row_mask=[2, 0])
            with shm.Attachment() as attachment:
                assert shm.decode_block(handle, attachment) == \
                    [[30, 10], ["c", "a"]]
                assert shm.block_rows(handle, attachment) == 2


class TestLifecycle:
    def test_store_close_unlinks_everything(self):
        store = shm.ShmStore()
        store.publish_block([[1, 2]], 2)
        store.publish_block([["x"]], 1)
        assert len(shm.scan_segments(store.prefix)) == 2
        assert store.stats.shm_segments == 2
        store.close()
        assert shm.scan_segments(store.prefix) == []
        store.close()               # idempotent

    def test_attachments_are_memoized_and_refcounted(self):
        store = shm.ShmStore()
        handle = store.publish_block([[1, 2, 3]], 3)
        first, second = shm.Attachment(), shm.Attachment()
        assert first.get(handle.segment) is first.get(handle.segment)
        [a] = shm.decode_block(handle, first)
        [b] = shm.decode_block(handle, second)
        first.close()
        # An open sibling attachment is unaffected; the segment even
        # survives the creator's unlink until the last mapping drops.
        [c] = shm.decode_block(handle, second)
        store.close()
        assert a == b == c == [1, 2, 3]
        second.close()
        assert shm.scan_segments(store.prefix) == []

    def test_sweep_reclaims_crashed_run(self):
        # Simulate a coordinator crash: segments published, never closed.
        store = shm.ShmStore()
        store.publish_block([[1]], 1)
        store.publish_block([[2]], 1, disown=True)    # worker-publish mode
        assert len(shm.scan_segments(store.prefix)) == 2
        assert shm.sweep_prefix(store.prefix) == 2
        assert shm.scan_segments(store.prefix) == []
        store.close()               # post-sweep close is a no-op, not a raise

    def test_unlink_segment_missing_is_false(self):
        assert shm.unlink_segment("reproshm_never_existed") is False

    def test_scan_ignores_foreign_prefixes(self):
        store = shm.ShmStore()
        store.publish_block([[1]], 1)
        assert shm.scan_segments("reproshm_notmine") == []
        assert store._segments[0].name in shm.scan_segments()
        store.close()


@pytest.mark.parametrize("backend", ("columnar", "numpy"))
def test_adopted_engine_matches_plain_engine(backend):
    """An engine evaluating through adopted shm columns must produce the
    same tables as one working from the original in-process env."""
    task = get_task("fh02_region_quarter_share")
    queries = [task.ground_truth] + \
        [TableRef(t.name) for t in task.tables]
    with shm.ShmStore() as store:
        handle = store.publish_env(task.env)
        attachment = shm.Attachment()
        env, adopted = shm.adopt_env(handle, attachment,
                                     want_views=backend == "numpy")
        adopted_engine = make_engine(backend)
        adopted_engine.adopt_env(env, adopted)
        plain_engine = make_engine(backend)
        for query in queries:
            assert adopted_engine.evaluate(query, env) == \
                plain_engine.evaluate(query, task.env)
        # Release the adopted blocks (and any zero-copy views) before
        # detaching, as the worker does on shutdown.
        adopted_engine.reset()
        del env, adopted
        attachment.close()


class TestLocalPlanCache:
    def test_eligibility_threshold(self):
        cache = LocalPlanCache()
        task = get_task("fh02_region_quarter_share")
        assert not cache.eligible(TableRef(task.tables[0].name))
        assert operator_count(task.ground_truth) >= MIN_SHARED_OPERATORS
        assert cache.eligible(task.ground_truth)

    def test_publish_then_fetch_shares_by_reference(self):
        cache = LocalPlanCache()
        task = get_task("fe01_total_sales_per_region")
        columns = [[1, 2], ["a", "b"]]
        assert cache.fetch(task.ground_truth, task.env) is None
        assert cache.publish(task.ground_truth, task.env, columns, 2) == 0
        fetched = cache.fetch(task.ground_truth, task.env)
        assert fetched == (columns, 2)
        assert fetched[0] is columns          # no copy, same address space

    def test_entry_cap(self):
        cache = LocalPlanCache(max_entries=1)
        env = get_task("fe01_total_sales_per_region").env
        cache.publish(TableRef("a"), env, [[1]], 1)
        cache.publish(TableRef("b"), env, [[2]], 1)
        assert cache.fetch(TableRef("b"), env) is None

    def test_two_engines_share_sub_plan_results(self):
        """The cross-shard scenario in one address space: the second
        engine's first evaluation of a shared sub-plan is a cache hit."""
        task = get_task("fh02_region_quarter_share")
        cache = LocalPlanCache()
        first, second = make_engine("columnar"), make_engine("columnar")
        first.shared_plans = cache.client(0)
        second.shared_plans = cache.client(1)
        reference = make_engine("columnar").evaluate(task.ground_truth,
                                                     task.env)
        assert first.evaluate(task.ground_truth, task.env) == reference
        assert first.stats.cross_shard_hits == 0
        assert second.evaluate(task.ground_truth, task.env) == reference
        assert second.stats.cross_shard_hits >= 1


class TestProcessPlanClient:
    """Protocol-level tests against a plain-dict index (the DictProxy's
    get/setdefault/len/items surface) — no manager process needed."""

    @pytest.fixture
    def query_env(self):
        task = next(t for t in all_tasks()
                    if operator_count(t.ground_truth) >= MIN_SHARED_OPERATORS)
        return task.ground_truth, task.env

    def test_digest_is_stable_and_structural(self, query_env):
        query, _ = query_env
        clone = pickle.loads(pickle.dumps(query))
        assert plan_digest(query) == plan_digest(clone)
        assert plan_digest(query) != plan_digest(TableRef("t"))

    def test_publish_then_sibling_fetch(self, query_env):
        query, env = query_env
        index: dict = {}
        publisher = ProcessPlanClient(index, "reproshm_tclient0", 64)
        sibling = ProcessPlanClient(index, "reproshm_tclient1", 64)
        try:
            assert sibling.fetch(query, env) is None
            shipped = publisher.publish(query, env, [[1, 2], [0.5, 1.5]], 2)
            assert shipped > 0
            assert sibling.fetch(query, env) == ([[1, 2], [0.5, 1.5]], 2)
        finally:
            publisher.close()
            sibling.close()
            assert shm.sweep_prefix("reproshm_tclient") == 1

    def test_lost_publish_race_reclaims_segment(self, query_env):
        query, env = query_env
        index: dict = {}
        winner = ProcessPlanClient(index, "reproshm_tracew", 64)
        loser = ProcessPlanClient(index, "reproshm_tracel", 64)
        try:
            assert winner.publish(query, env, [[1]], 1) > 0
            assert loser.publish(query, env, [[1]], 1) == 0
            # The loser's segment was reclaimed on the spot...
            assert shm.scan_segments("reproshm_tracel") == []
            # ... and fetches resolve to the winner's.
            assert loser.fetch(query, env) == ([[1]], 1)
        finally:
            winner.close()
            loser.close()
            assert shm.sweep_prefix("reproshm_trace") == 1

    def test_swept_segment_fetches_as_miss(self, query_env):
        query, env = query_env
        index: dict = {}
        publisher = ProcessPlanClient(index, "reproshm_tswept", 64)
        reader = ProcessPlanClient(index, "reproshm_tswept9", 64)
        try:
            publisher.publish(query, env, [[1]], 1)
            assert shm.sweep_prefix("reproshm_tswept_") == 1
            assert reader.fetch(query, env) is None
        finally:
            publisher.close()
            reader.close()

    def test_entry_cap_stops_publishes(self, query_env):
        query, env = query_env
        client = ProcessPlanClient({"occupied": None}, "reproshm_tcap", 1)
        try:
            assert client.publish(query, env, [[1]], 1) == 0
            assert shm.scan_segments("reproshm_tcap") == []
        finally:
            client.close()

    def test_client_pickles_without_live_segments(self, query_env):
        query, env = query_env
        client = ProcessPlanClient({}, "reproshm_tpick", 64)
        client.publish(query, env, [[1]], 1)
        clone = pickle.loads(pickle.dumps(client))
        assert clone._prefix == "reproshm_tpick"
        assert clone._store is None and clone._attachment is None
        client.close()
        assert shm.sweep_prefix("reproshm_tpick") == 1

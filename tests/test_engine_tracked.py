"""Columnar provenance tracking: TrackedBlock kernels + batch evaluation."""

import pytest

from repro.engine import ColumnarEngine, RowEngine, TrackedBlock, make_engine
from repro.engine.columns import ColumnBlock
from repro.engine.tracked_columns import (
    agg_term,
    arithmetic_expr_column,
    cross_join_exprs,
    group_agg_expr_column,
    group_key_expr_columns,
    group_member_exprs,
    group_term,
    partition_expr_column,
    select_expr_columns,
    table_ref_exprs,
    take_expr_columns,
)
from repro.errors import HoleError
from repro.lang import (
    Arithmetic,
    Env,
    Filter,
    Group,
    Hole,
    Partition,
    Proj,
    Sort,
    TableRef,
)
from repro.lang.functions import analytic_spec
from repro.lang.predicates import ConstCmp
from repro.provenance.expr import CellRef, Const, FuncApp, GroupSet, cell, func
from repro.provenance.simplify import simplify
from repro.semantics import evaluate_tracking
from repro.table.table import Table


@pytest.fixture
def table():
    return Table.from_rows(
        "T", ["City", "Quarter", "Amount"],
        [["A", 1, 10], ["A", 2, 20], ["B", 1, 30], ["B", 2, 40], ["A", 1, 5]])


@pytest.fixture
def env(table):
    return Env.of(table)


class TestTermConstructors:
    """Shallow constructors must equal full simplify() on simplified args."""

    def test_agg_term_flattens_nested_sums(self):
        inner = func("sum", cell("T", 0, 2), cell("T", 1, 2))
        args = (inner, cell("T", 2, 2))
        assert agg_term("sum", args) == simplify(FuncApp("sum", args))

    def test_agg_term_preserves_partial_flags(self):
        inner = FuncApp("sum", (cell("T", 0, 2),), partial=True)
        out = agg_term("sum", (inner, cell("T", 1, 2)))
        assert out.partial
        assert out == simplify(FuncApp("sum", (inner, cell("T", 1, 2))))

    def test_agg_term_non_flattenable_kept_nested(self):
        inner = func("avg", cell("T", 0, 2), cell("T", 1, 2))
        args = (inner, cell("T", 2, 2))
        assert agg_term("avg", args) == simplify(FuncApp("avg", args))
        assert agg_term("avg", args).args[0] is inner

    def test_group_term_flattens_and_dedups(self):
        nested = GroupSet((cell("T", 0, 0), cell("T", 1, 0)))
        members = (nested, cell("T", 0, 0), cell("T", 2, 0))
        assert group_term(members) == simplify(GroupSet(members))


class TestTrackedBlockKernels:
    def _tracked(self, query, env):
        """Expression columns of the row reference, for comparison."""
        reference = evaluate_tracking(query, env)
        return [list(col) for col in zip(*reference.exprs)] \
            if reference.exprs else []

    def test_table_ref_exprs(self, table):
        cols = table_ref_exprs("T", table.n_rows, table.n_cols)
        assert cols[1][3] == CellRef("T", 3, 1)
        assert len(cols) == table.n_cols
        assert all(len(c) == table.n_rows for c in cols)

    def test_take_and_select_share_structure(self, table):
        base = table_ref_exprs("T", table.n_rows, table.n_cols)
        taken = take_expr_columns(base, [4, 0])
        assert taken[2] == [base[2][4], base[2][0]]
        picked = select_expr_columns(base, (2, 0))
        assert picked[0] is base[2]          # zero-copy projection
        assert picked[1] is base[0]

    def test_cross_join_order(self):
        left = [[CellRef("L", 0, 0), CellRef("L", 1, 0)]]
        right = [[CellRef("R", 0, 0)], [CellRef("R", 0, 1)]]
        cols = cross_join_exprs(left, right, 2, 1)
        assert cols[0] == [CellRef("L", 0, 0), CellRef("L", 1, 0)]
        assert cols[1] == [CellRef("R", 0, 0)] * 2

    def test_group_kernels_match_row_semantics(self, env):
        q = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        expected = self._tracked(q, env)
        base = table_ref_exprs("T", 5, 3)
        groups = [[0, 1, 4], [2, 3]]
        key_cols = group_key_expr_columns(base, (0,), groups)
        members = group_member_exprs(base[2], groups)
        agg_col = group_agg_expr_column(members, "sum")
        assert key_cols[0] == expected[0]
        assert agg_col == expected[1]

    @pytest.mark.parametrize("agg", ["sum", "avg", "count", "cumsum",
                                     "rank", "dense_rank", "rank_desc"])
    def test_partition_styles_match_row_semantics(self, env, agg):
        q = Partition(TableRef("T"), keys=(0,), agg_func=agg, agg_col=2)
        expected = self._tracked(q, env)
        base = table_ref_exprs("T", 5, 3)
        out = partition_expr_column(base[2], [[0, 1, 4], [2, 3]],
                                    analytic_spec(agg), 5)
        assert out == expected[3]

    def test_all_style_window_term_shared_per_group(self):
        base = table_ref_exprs("T", 4, 1)
        out = partition_expr_column(base[0], [[0, 2], [1, 3]],
                                    analytic_spec("sum"), 4)
        assert out[0] is out[2]            # one term per group, shared
        assert out[1] is out[3]
        assert out[0] != out[1]

    def test_arithmetic_exprs_match_row_semantics(self, env):
        q = Arithmetic(TableRef("T"), func="div", cols=(2, 1))
        expected = self._tracked(q, env)
        base = table_ref_exprs("T", 5, 3)
        out = arithmetic_expr_column(base, "div", (2, 1), 5)
        assert out == expected[3]

    def test_to_tracked_table_matches_row_reference(self, env):
        q = Sort(Filter(TableRef("T"), ConstCmp(2, ">", 5)),
                 cols=(2,), ascending=False)
        engine = ColumnarEngine()
        assert engine.evaluate_tracking(q, env) == evaluate_tracking(q, env)

    def test_zero_column_block_materializes(self):
        block = TrackedBlock([], ColumnBlock([], 3))
        tracked = block.to_tracked_table(())
        assert tracked.n_rows == 3
        assert tracked.exprs == ((), (), ())


class TestTrackedSharing:
    """Structural sharing across nodes, siblings and the concrete path."""

    def test_append_only_operators_share_expr_columns(self, env):
        engine = ColumnarEngine()
        child = TableRef("T")
        part = Partition(child, keys=(0,), agg_func="sum", agg_col=2)
        engine.evaluate_tracking(part, env)
        child_block = engine._tracked_block(child, env)
        part_block = engine._tracked_block(part, env)
        for j in range(child_block.n_cols):
            assert part_block.expr_columns[j] is child_block.expr_columns[j]

    def test_value_shadow_is_the_concrete_block(self, env):
        engine = ColumnarEngine()
        q = Filter(TableRef("T"), ConstCmp(2, ">", 5))
        engine.evaluate_tracking(q, env)
        assert engine._tracked_block(q, env).values is engine._block(q, env)

    def test_grouping_shared_between_concrete_and_tracking(self, env):
        engine = ColumnarEngine()
        q = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        engine.evaluate(q, env)
        groupings_after_concrete = len(engine._groupings)
        engine.evaluate_tracking(q, env)
        # extractGroups was *not* recomputed for the tracking path: only
        # tracking-specific entries (key terms / member terms) were added.
        key = (TableRef("T"), env, (0,))
        assert key in engine._groupings
        assert groupings_after_concrete > 0

    def test_sibling_aggregations_share_key_terms(self, env):
        engine = ColumnarEngine()
        blocks = [engine._tracked_block(
            Group(TableRef("T"), keys=(0,), agg_func=f, agg_col=2), env)
            for f in ("sum", "max", "min", "count")]
        first = blocks[0].expr_columns[0]
        assert all(b.expr_columns[0] is first for b in blocks[1:])


@pytest.mark.parametrize("backend", ["row", "columnar"])
class TestEvaluateMany:
    def _family(self):
        t = TableRef("T")
        return [Group(t, keys=(0,), agg_func=f, agg_col=2)
                for f in ("sum", "max", "min", "count", "avg")]

    def test_results_in_input_order(self, backend, env):
        engine = make_engine(backend)
        family = self._family()
        batch = engine.evaluate_many(family, env)
        assert batch == [engine.evaluate(q, env) for q in family]
        tracked = engine.evaluate_tracking_many(family, env)
        assert tracked == [engine.evaluate_tracking(q, env) for q in family]

    def test_hole_always_raises(self, backend, env):
        engine = make_engine(backend)
        partial = Group(TableRef("T"), keys=Hole("keys"), agg_func="sum",
                        agg_col=2)
        for errors in ("raise", "none"):
            with pytest.raises(HoleError):
                engine.evaluate_many([TableRef("T"), partial], env,
                                     errors=errors)
            with pytest.raises(HoleError):
                engine.evaluate_tracking_many([TableRef("T"), partial], env,
                                              errors=errors)

    def test_errors_none_maps_failures_to_none(self, backend):
        # Subtracting a number from a string explodes with TypeError — an
        # ill-typed candidate (part of real instantiation streams), not a
        # caller bug.
        mixed = Table.from_rows("M", ["x", "y"], [["a", 1], ["b", 2]])
        env = Env.of(mixed)
        bad = Arithmetic(TableRef("M"), func="sub", cols=(0, 1))
        good = TableRef("M")
        engine = make_engine(backend)
        out = engine.evaluate_many([good, bad, good], env, errors="none")
        assert out[1] is None
        assert out[0] == out[2] == engine.evaluate(good, env)
        with pytest.raises(TypeError):
            engine.evaluate_many([bad], env)

    def test_invalid_errors_mode_rejected(self, backend, env):
        engine = make_engine(backend)
        with pytest.raises(ValueError, match="errors"):
            engine.evaluate_many([TableRef("T")], env, errors="ignore")

    def test_cache_stats_match_single_calls(self, backend, env):
        family = self._family()
        batched, single = make_engine(backend), make_engine(backend)
        batched.evaluate_tracking_many(family, env)
        for q in family:
            single.evaluate_tracking(q, env)
        assert batched.stats.as_dict() == single.stats.as_dict()
        # A second batch is all hits — served from cache, counted as such.
        before = batched.stats.tracking_evals
        batch = batched.evaluate_tracking_many(family, env)
        assert batched.stats.tracking_evals == before
        assert batched.stats.tracking_hits >= len(family)
        assert batch == [single.evaluate_tracking(q, env) for q in family]

"""The experiment harness: runner, figures, reports, CLI plumbing."""

import pytest

from repro.benchmarks import get_task
from repro.experiments.figures import (
    _percentile,
    fig12_curve,
    fig12_table,
    fig13_stats,
    fig13_table,
    results_csv,
)
from repro.experiments.report import (
    commonly_solved,
    mean_visited,
    observation_report,
    ranking_stats,
    solved_counts,
    speedup_over,
    visit_reduction,
)
from repro.experiments.runner import (
    RunConfig,
    TaskResult,
    run_suite,
    run_task,
)


def _result(task="t", technique="provenance", solved=True, time_s=1.0,
            visited=100, difficulty="easy", rank=1, pruned=50):
    return TaskResult(task=task, suite="forum", difficulty=difficulty,
                      technique=technique, solved=solved, time_s=time_s,
                      visited=visited, pruned=pruned, concrete_checked=10,
                      consistent_found=1, timed_out=not solved, rank=rank,
                      demo_cells=6)


@pytest.fixture
def results():
    out = []
    for i, task in enumerate(("t1", "t2", "t3")):
        difficulty = "easy" if i < 2 else "hard"
        out.append(_result(task, "provenance", True, 0.5 + i, 100 + i,
                           difficulty, rank=1))
        out.append(_result(task, "value", i < 2, 2.0 + i, 1000 + i,
                           difficulty, rank=2 if i < 2 else None))
        out.append(_result(task, "type", i < 1, 4.0 + i, 5000 + i,
                           difficulty, rank=1 if i < 1 else None))
    return out


class TestRunner:
    def test_run_task_solves_simple_benchmark(self):
        task = get_task("fe01_total_sales_per_region")
        result = run_task(task, "provenance",
                          RunConfig(easy_timeout_s=15, hard_timeout_s=15))
        assert result.solved
        assert result.technique == "provenance"
        assert result.rank == 1
        assert result.visited > 0
        assert result.demo_cells == task.demonstration.size

    def test_run_task_respects_timeout(self):
        task = get_task("fe36_health_program_percentage")
        result = run_task(task, "type",
                          RunConfig(easy_timeout_s=0.2, hard_timeout_s=0.2))
        assert not result.solved
        assert result.timed_out

    def test_timeout_for_difficulty(self):
        rc = RunConfig(easy_timeout_s=3, hard_timeout_s=9)
        easy = get_task("fe01_total_sales_per_region")
        hard = get_task("fh02_region_quarter_share")
        assert rc.timeout_for(easy) == 3
        assert rc.timeout_for(hard) == 9


class TestFigures:
    def test_percentile(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(data, 0) == 1.0
        assert _percentile(data, 1) == 4.0
        assert _percentile(data, 0.5) == 2.5

    def test_fig12_curve_monotone(self, results):
        curve = fig12_curve(results, "provenance", [0.1, 1.0, 10.0])
        assert curve == sorted(curve)
        assert curve[-1] == 3

    def test_fig12_table_structure(self, results):
        table = fig12_table(results, limits=[1.0, 5.0])
        assert "easy tasks" in table and "hard tasks" in table
        assert "provenance" in table

    def test_fig13_stats(self, results):
        stats = fig13_stats(results, "provenance", "easy")
        assert stats["n"] == 2
        assert stats["min"] <= stats["median"] <= stats["max"]

    def test_fig13_table(self, results):
        text = fig13_table(results)
        assert "queries explored" in text

    def test_results_csv_round_shape(self, results):
        csv_text = results_csv(results)
        lines = csv_text.strip().splitlines()
        assert len(lines) == len(results) + 1
        assert lines[0].startswith("task,suite,difficulty")


class TestReport:
    def test_solved_counts(self, results):
        counts = solved_counts(results)
        assert counts["provenance"]["all"] == 3
        assert counts["value"]["all"] == 2
        assert counts["type"]["all"] == 1

    def test_commonly_solved(self, results):
        assert commonly_solved(results) == {"t1"}

    def test_speedup_over(self, results):
        # commonly solved: t1 (4x) and t2 (2x) -> mean 3x
        assert speedup_over(results, "value") == pytest.approx(3.0)

    def test_mean_visited(self, results):
        assert mean_visited(results, "provenance") == pytest.approx(101.0)

    def test_visit_reduction_positive(self, results):
        assert visit_reduction(results) > 90.0

    def test_ranking_stats(self, results):
        stats = ranking_stats(results)
        assert stats["top1"] == 3

    def test_observation_report_text(self, results):
        text = observation_report(results)
        assert "Observation 1" in text and "Observation 2" in text
        assert "provenance" in text


class TestCli:
    def test_summary_command(self, capsys):
        from repro.experiments.cli import main
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert '"total": 80' in out

    def test_validate_single_task(self, capsys):
        from repro.experiments.cli import main
        assert main(["validate", "--tasks",
                     "fe01_total_sales_per_region"]) == 0
        assert "ok fe01" in capsys.readouterr().out

    def test_report_on_one_task(self, capsys, tmp_path):
        from repro.experiments.cli import main
        csv_path = tmp_path / "out.csv"
        code = main(["report", "--tasks", "fe01_total_sales_per_region",
                     "--techniques", "provenance",
                     "--easy-timeout", "10", "--csv", str(csv_path)])
        assert code == 0
        assert "Observation 1" in capsys.readouterr().out
        assert csv_path.read_text().startswith("task,")


class TestLegacyKwargsShim:
    """run_task/run_suite still absorb the pre-session loose-kwargs API —
    behind a DeprecationWarning, mapped onto RunConfig exactly."""

    TASK = "fe01_total_sales_per_region"

    def test_loose_kwargs_warn_and_map_onto_run_config(self):
        task = get_task(self.TASK)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            loose = run_task(task, "provenance", easy_timeout_s=15,
                             hard_timeout_s=15, max_visited=200)
        explicit = run_task(task, "provenance",
                            RunConfig(easy_timeout_s=15, hard_timeout_s=15,
                                      max_visited=200))
        assert loose.solved == explicit.solved
        assert loose.visited == explicit.visited
        assert loose.rank == explicit.rank

    def test_every_run_config_field_is_accepted_loose(self):
        from dataclasses import fields

        from repro.experiments.runner import _coerce_run_config
        loose = {f.name: getattr(RunConfig(), f.name)
                 for f in fields(RunConfig)}
        with pytest.warns(DeprecationWarning):
            coerced = _coerce_run_config(None, loose, "run_task")
        assert coerced == RunConfig()

    def test_unknown_loose_kwarg_is_a_type_error_not_a_warning(self):
        task = get_task(self.TASK)
        with pytest.raises(TypeError, match="unexpected keyword"):
            run_task(task, "provenance", max_visted=200)  # typo'd name

    def test_config_object_plus_loose_kwargs_rejected(self):
        task = get_task(self.TASK)
        with pytest.raises(TypeError, match="one or the other"):
            run_task(task, "provenance", RunConfig(), max_visited=200)

    def test_run_suite_shares_the_shim(self):
        task = get_task(self.TASK)
        with pytest.warns(DeprecationWarning, match="run_suite"):
            results = run_suite([task], ("provenance",), easy_timeout_s=15,
                                hard_timeout_s=15, max_visited=200)
        assert len(results) == 1 and results[0].task == self.TASK
        with pytest.raises(TypeError, match="unexpected keyword"):
            run_suite([task], ("provenance",), slice_pops=5)

"""Chaos tests for the fault-tolerant serving stack.

Every test here injects deterministic faults (:mod:`repro.serve.faults`)
into the pool and asserts the recovery contract: under worker crashes
(before / mid / after a slice), hangs, publish failures and spawn
failures, every affected request still completes with ranked queries and
``SearchStats`` byte-identical to a crash-free run — the determinism
pledge is what makes checkpoint-replay recovery transparent — and no
shared-memory segments leak past pool close.
"""

import asyncio
import multiprocessing

import pytest

from repro.benchmarks import all_tasks
from repro.engine import shm
from repro.serve import (
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    ServiceConfig,
    ServiceOverloaded,
    SynthesisService,
    WorkerPool,
    parse_faults,
)
from repro.serve.service import CANCELLED, DONE, FAILED, RETRYING
from repro.synthesis import GroundTruthStop, Synthesizer
from repro.synthesis.session import SynthesisSession

TASKS = {t.name: t for t in all_tasks()}
EASY = TASKS["fe01_total_sales_per_region"]
HARD = TASKS["fh02_region_quarter_share"]
SHARED = TASKS["fe20_share_of_region_total"]

VISITED_BUDGET = 400

#: The stats fields the determinism pledge covers (elapsed_s is wall
#: clock and legitimately varies).
DETERMINISTIC_FIELDS = ("visited", "pruned", "expanded", "concrete_checked",
                        "consistent_found", "timed_out", "skeletons",
                        "max_skeleton_size")

BACKENDS = ("threads", "processes")

START_METHODS = tuple(m for m in ("fork", "spawn")
                      if m in multiprocessing.get_all_start_methods())


def _config(task, budget=VISITED_BUDGET, **overrides):
    return task.config.replace(timeout_s=None, max_visited=budget,
                               **overrides)


def _reference(task, config, stop=None):
    return Synthesizer("provenance", config).run(
        task.tables, task.demonstration, stop)


def _assert_identical(reference, result):
    assert result.queries == reference.queries
    for field in DETERMINISTIC_FIELDS:
        assert getattr(result.stats, field) == \
            getattr(reference.stats, field), field
    assert result.target == reference.target


def _chaos_config(plan, *, backend="processes", max_retries=4,
                  slice_timeout_s=None, **overrides):
    return ServiceConfig(pool_size=1, pool_backend=backend, slice_pops=50,
                         max_retries=max_retries,
                         supervise_interval_s=0.02,
                         slice_timeout_s=slice_timeout_s, faults=plan,
                         **overrides)


# ---------------------------------------------------------------- fault plans

def test_parse_faults_roundtrip_and_validation():
    plan = parse_faults("seed=7, crash_before=0.25,hang=0.5,hang_s=0.1,"
                        "max_incarnation=2")
    assert plan == FaultPlan(seed=7, crash_before=0.25, hang=0.5,
                             hang_s=0.1, max_incarnation=2)
    assert parse_faults(None) is None
    assert parse_faults("   ") is None
    with pytest.raises(ValueError, match="unknown fault knob"):
        parse_faults("crash_sometimes=0.5")
    with pytest.raises(ValueError, match="not key=value"):
        parse_faults("crash_before")
    with pytest.raises(ValueError, match="must be in"):
        FaultPlan(crash_before=1.5)
    with pytest.raises(ValueError, match="hang_s"):
        FaultPlan(hang_s=-1.0)


def test_plan_from_env(monkeypatch):
    from repro.serve.faults import plan_from_env
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    assert plan_from_env() is None
    monkeypatch.setenv("REPRO_FAULTS", "seed=3,crash_mid=1.0")
    assert plan_from_env() == FaultPlan(seed=3, crash_mid=1.0)


def test_injector_draws_are_deterministic_and_incarnation_salted():
    plan = FaultPlan(seed=11, crash_before=0.5)
    a = FaultInjector(plan, worker_id=0, incarnation=0)
    b = FaultInjector(plan, worker_id=0, incarnation=0)
    assert [a.draw("x") for _ in range(8)] == \
        [b.draw("x") for _ in range(8)]
    # Different worker / incarnation / site: different streams.
    c = FaultInjector(plan, worker_id=1, incarnation=0)
    d = FaultInjector(plan, worker_id=0, incarnation=1)
    stream = [FaultInjector(plan, 0, 0).draw("x") for _ in range(1)]
    assert [c.draw("x")] != stream
    assert [d.draw("x")] != stream
    assert FaultInjector(plan, 0, 0).draw("y") != stream[0]


def test_injector_disarms_past_max_incarnation():
    plan = FaultPlan(seed=1, crash_before=1.0, max_incarnation=1)
    armed = FaultInjector(plan, worker_id=0, incarnation=0)
    with pytest.raises(InjectedCrash):
        armed.slice_begin(None)
    # The restarted worker's injector (incarnation 1) runs clean.
    clean = FaultInjector(plan, worker_id=0, incarnation=1)

    class _Session:
        def set_pop_hook(self, hook):
            self.hook = hook

    session = _Session()
    clean.slice_begin(session)
    clean.slice_end()
    assert session.hook is None


def test_session_pop_hook_fires_per_pop_and_is_runtime_only():
    config = _config(EASY)
    session = SynthesisSession(EASY.tables, EASY.demonstration, config)
    pops = []
    session.set_pop_hook(lambda: pops.append(1))
    session.step(max_pops=5)
    assert len(pops) == 5
    resumed = SynthesisSession.resume(session.checkpoint())
    assert resumed._pop_hook is None    # never checkpointed


# ----------------------------------------------------------- crash recovery

@pytest.mark.parametrize("mode", ("crash_before", "crash_mid",
                                  "crash_after", "hang"))
def test_recovery_is_transparent_under_injected_faults(mode):
    """The acceptance criterion: a worker killed before / a few pops
    into / after a slice (or hung mid-slice) costs a restart and a
    replay, never correctness — ranked queries and stats byte-identical
    to the crash-free run, zero leaked shm segments."""
    if mode == "hang":
        plan = FaultPlan(seed=5, hang=1.0, hang_s=30.0)
        slice_timeout = 0.3
    else:
        plan = FaultPlan(seed=5, **{mode: 1.0})
        slice_timeout = None

    async def main():
        config = _config(SHARED)
        stop = GroundTruthStop(SHARED.ground_truth)
        reference = _reference(SHARED, config, stop)
        svc_cfg = _chaos_config(plan, slice_timeout_s=slice_timeout)
        async with SynthesisService(svc_cfg) as svc:
            prefix = svc.pool._backend.prefix
            handle = svc.submit(SHARED.tables, SHARED.demonstration,
                                config, stop=stop)
            result = await handle.result()
            _assert_identical(reference, result)
            assert handle.status == DONE
            assert handle.retries >= 1
            telemetry = svc.pool.telemetry()
            assert telemetry["restarts"] >= 1
            if mode == "hang":
                assert telemetry["hangs"] >= 1
            else:
                assert telemetry["worker_deaths"] >= 1
            health = svc.health()
            assert health["retries"] >= 1
            assert health["recovered_requests"] >= 1
            assert all(w["alive"] for w in health["pool"]["workers"])
        return prefix

    prefix = asyncio.run(main())
    assert shm.scan_segments(prefix) == []


@pytest.mark.parametrize("start_method", START_METHODS)
def test_recovery_differential_fork_and_spawn(start_method):
    """The crash-free and crashed runs agree under both start methods
    (spawn re-imports everything; fork inherits — recovery must be
    correct either way)."""
    plan = FaultPlan(seed=9, crash_mid=1.0)

    async def main():
        config = _config(SHARED)
        stop = GroundTruthStop(SHARED.ground_truth)
        reference = _reference(SHARED, config, stop)
        pool = WorkerPool(1, backend="processes", start_method=start_method,
                          faults=plan, supervise_interval_s=0.02)
        try:
            svc_cfg = ServiceConfig(pool_size=1, slice_pops=50,
                                    max_retries=4)
            async with SynthesisService(svc_cfg, pool=pool) as svc:
                handle = svc.submit(SHARED.tables, SHARED.demonstration,
                                    config, stop=stop)
                result = await handle.result()
                _assert_identical(reference, result)
                assert handle.retries >= 1
        finally:
            pool.close()
        assert shm.scan_segments(pool._backend.prefix) == []

    asyncio.run(main())


def test_thread_tier_crash_recovers_identically():
    """An injected crash on the thread tier kills the worker thread; the
    facade restarts it and the service replays — same contract as the
    process tier."""
    plan = FaultPlan(seed=7, crash_before=1.0)

    async def main():
        config = _config(SHARED)
        stop = GroundTruthStop(SHARED.ground_truth)
        reference = _reference(SHARED, config, stop)
        svc_cfg = _chaos_config(plan, backend="threads")
        async with SynthesisService(svc_cfg) as svc:
            handle = svc.submit(SHARED.tables, SHARED.demonstration,
                                config, stop=stop)
            result = await handle.result()
            _assert_identical(reference, result)
            assert handle.retries >= 1
            assert svc.pool.telemetry()["restarts"] >= 1

    asyncio.run(main())


def test_publish_failure_degrades_to_pickled_env_dispatch():
    """A failed shm env publish ships the request with a pickled env
    instead of failing it — no restart, no retry, identical result."""
    plan = FaultPlan(seed=2, publish_fail=1.0)

    async def main():
        config = _config(SHARED)
        stop = GroundTruthStop(SHARED.ground_truth)
        reference = _reference(SHARED, config, stop)
        async with SynthesisService(_chaos_config(plan)) as svc:
            handle = svc.submit(SHARED.tables, SHARED.demonstration,
                                config, stop=stop)
            result = await handle.result()
            _assert_identical(reference, result)
            assert handle.retries == 0
            telemetry = svc.pool.telemetry()
            assert telemetry["shm_degradations"] >= 1
            assert telemetry["restarts"] == 0

    asyncio.run(main())


def test_spawn_failure_degrades_pool_to_threads():
    """When every restart attempt fails, the pool swaps onto the thread
    backend instead of dying: the request replays there, identically,
    and the dead process tier's segments are swept."""
    plan = FaultPlan(seed=2, crash_before=1.0, spawn_fail=1.0)

    async def main():
        config = _config(SHARED)
        stop = GroundTruthStop(SHARED.ground_truth)
        reference = _reference(SHARED, config, stop)
        async with SynthesisService(_chaos_config(plan)) as svc:
            prefix = svc.pool._backend.prefix
            handle = svc.submit(SHARED.tables, SHARED.demonstration,
                                config, stop=stop)
            result = await handle.result()
            _assert_identical(reference, result)
            assert handle.status == DONE
            telemetry = svc.pool.telemetry()
            assert telemetry["backend"] == "threads"
            assert telemetry["backend_degradations"] == 1
            assert telemetry["spawn_failures"] == 3
            assert svc.pool.degraded
            assert shm.scan_segments(prefix) == []  # old tier swept

    asyncio.run(main())


def test_retry_budget_exhaustion_fails_with_accumulated_errors():
    """A worker that keeps crashing (every incarnation armed) exhausts
    the per-request replay budget; the request fails with every worker
    error accumulated, and terminal FAILED is sticky."""
    plan = FaultPlan(seed=2, crash_before=1.0, max_incarnation=99)

    async def main():
        config = _config(SHARED)
        svc_cfg = _chaos_config(plan, max_retries=1)
        async with SynthesisService(svc_cfg) as svc:
            handle = svc.submit(SHARED.tables, SHARED.demonstration, config)
            with pytest.raises(RuntimeError) as excinfo:
                await handle.result()
            assert "retry budget exhausted" in str(excinfo.value)
            assert "injected crash" in str(excinfo.value)
            assert handle.status == FAILED
            assert svc.health()["states"] == {}     # nothing stuck live

    asyncio.run(main())


def test_cancel_during_recovery_still_ends_cancelled():
    """A cancel that lands while the request is RETRYING (its worker
    just died) is sticky: the replayed session is cancelled before
    re-dispatch and the request ends CANCELLED — never failed, never
    silently completed."""
    plan = FaultPlan(seed=4, crash_before=1.0)

    async def main():
        svc_cfg = _chaos_config(plan)
        async with SynthesisService(svc_cfg) as svc:
            config = _config(HARD, budget=10**8, top_n=10**6)
            handle = svc.submit(HARD.tables, HARD.demonstration, config)
            # The first slice is guaranteed to crash; catch the request
            # in its RETRYING window (it lasts until the replacement
            # worker ships its first slice).
            deadline = asyncio.get_running_loop().time() + 10.0
            while handle.status != RETRYING:
                assert asyncio.get_running_loop().time() < deadline, \
                    f"never saw RETRYING (status {handle.status})"
                await asyncio.sleep(0)
            handle.cancel()
            result = await handle.result()
            assert handle.status == CANCELLED
            assert result.stats.visited < 10**8
            assert handle.retries == 1
            assert svc.pool.telemetry()["restarts"] >= 1

    asyncio.run(main())


def test_cancel_vs_crash_race_never_fails_the_request():
    """The worker dies exactly while applying a cancel op.  Whatever the
    interleaving (cancel flag already stopped the session, or the crash
    beat it), the request ends CANCELLED and the pool stays usable."""
    plan = FaultPlan(seed=4, crash_on_cancel=1.0)

    async def main():
        svc_cfg = _chaos_config(plan)
        async with SynthesisService(svc_cfg) as svc:
            config = _config(HARD, budget=10**8, top_n=10**6)
            handle = svc.submit(HARD.tables, HARD.demonstration, config)
            await asyncio.sleep(0.3)    # well into the search
            handle.cancel()
            result = await handle.result()
            assert handle.status == CANCELLED
            assert result.stats.visited < 10**8
            # The pool survives the induced death: a follow-up request
            # completes normally (on the restarted worker if the crash
            # landed, on the original if the flag won the race).
            stop = GroundTruthStop(SHARED.ground_truth)
            config = _config(SHARED)
            reference = _reference(SHARED, config, stop)
            follow_up = svc.submit(SHARED.tables, SHARED.demonstration,
                                   config, stop=stop)
            _assert_identical(reference, await follow_up.result())

    asyncio.run(main())


# ----------------------------------------------------- uniform edge behavior

@pytest.mark.parametrize("backend", BACKENDS)
def test_timeout_queued_vs_mid_slice_uniform(backend):
    """A budget that expires while the request is still queued and one
    that expires mid-search both surface as TIMED_OUT with the stats
    marker, on either tier — recovery machinery changes nothing here."""
    async def main():
        svc_cfg = ServiceConfig(pool_size=1, pool_backend=backend,
                                slice_pops=25)
        async with SynthesisService(svc_cfg) as svc:
            config = _config(HARD, budget=10**8, top_n=10**6)
            queued = svc.submit(HARD.tables, HARD.demonstration, config,
                                timeout_s=1e-9)
            result = await queued.result()
            assert queued.status == "timed_out"
            assert result.stats.timed_out
            assert result.stats.visited == 0    # expired before any pop

            mid = svc.submit(HARD.tables, HARD.demonstration, config,
                             timeout_s=0.3)
            result = await mid.result()
            assert mid.status == "timed_out"
            assert result.stats.timed_out
            assert result.stats.visited > 0     # some slices ran first

    asyncio.run(main())


def test_terminal_states_are_sticky():
    """Regression for the _fail/_finalize race with a late SliceOutcome
    from a dying worker: once DONE/CANCELLED/FAILED, a request never
    flips state, and its future's value never changes."""
    async def main():
        async with SynthesisService(ServiceConfig(pool_size=1)) as svc:
            config = _config(EASY)
            stop = GroundTruthStop(EASY.ground_truth)
            handle = svc.submit(EASY.tables, EASY.demonstration, config,
                                stop=stop)
            result = await handle.result()
            assert handle.status == DONE
            request = handle._request
            # A straggler outcome arriving after the terminal transition
            # must be a no-op, whichever shape it takes.
            svc._fail(request, "late error from a dying worker")
            svc._finalize(request, None, CANCELLED)
            svc._recover(request, "late worker death")
            assert handle.status == DONE
            assert (await handle.result()) is result

    asyncio.run(main())


def test_overloaded_carries_retry_after_hint():
    async def main():
        svc_cfg = ServiceConfig(pool_size=1, max_requests=1)
        async with SynthesisService(svc_cfg) as svc:
            config = _config(HARD, budget=10**8, top_n=10**6)
            first = svc.submit(HARD.tables, HARD.demonstration, config)
            with pytest.raises(ServiceOverloaded) as excinfo:
                svc.submit(HARD.tables, HARD.demonstration, config)
            assert excinfo.value.retry_after_s > 0
            first.cancel()
            await first.result()

    asyncio.run(main())


def test_pool_step_of_unknown_request_is_a_noop():
    """Recovery makes stale step/run calls legitimate (a request can be
    failed over between its last outcome and the next step) — they must
    not raise."""
    pool = WorkerPool(1, backend="threads")
    try:
        pool.step(9999)
        pool.run(9999)
        pool.cancel(9999)
        health = pool.health()
        assert health["workers"][0]["alive"]
        assert health["recovery"]["restarts"] == 0
    finally:
        pool.close()

"""End-to-end integration: the paper's running example, §2 complete.

From the health-program table and the Fig. 3 demonstration, the full
pipeline — skeleton enumeration, abstraction-guided pruning, consistency
checking, ranking, SQL rendering — must recover the Fig. 2 query.
"""

import pytest

from repro import (
    Env,
    SynthesisConfig,
    evaluate,
    synthesize,
    to_sql,
)
from repro.synthesis import same_output


@pytest.fixture(scope="module")
def solved(health_table, paper_demo, ground_truth):
    env = Env.of(health_table)
    config = SynthesisConfig(max_operators=3, timeout_s=120)
    result = synthesize([health_table], paper_demo, abstraction="provenance",
                        config=config,
                        stop_predicate=lambda q: same_output(
                            q, ground_truth, env))
    return result, env


class TestRunningExample:
    def test_solves(self, solved):
        result, _ = solved
        assert result.solved

    def test_finds_it_fast(self, solved):
        """The hand-written Fig. 3 demonstration spans only city A and three
        columns, so it constrains the search less than the §5.1-generated
        demonstrations (the paper discusses exactly this single-group
        ambiguity in §5.2) — the bound here is accordingly loose."""
        result, _ = solved
        assert result.stats.visited < 80_000
        assert result.stats.elapsed_s < 100

    def test_output_matches_paper_figures(self, solved, ground_truth,
                                          health_env):
        result, env = solved
        out = evaluate(result.target, env)
        gt_out = evaluate(ground_truth, health_env)
        # percentage column present with Fig. 1's values
        percents = sorted(round(v, 1) for v in gt_out.column_values(2))
        assert round(53.5, 1) in percents
        assert any(abs(v - 88.4) < 0.1 for v in percents)
        assert out.n_rows == gt_out.n_rows

    def test_sql_rendering_of_solution(self, solved):
        result, env = solved
        sql = to_sql(result.target, env)
        assert "GROUP BY" in sql
        assert "PARTITION BY" in sql

    def test_pruning_was_substantial(self, solved):
        result, _ = solved
        assert result.stats.pruned > result.stats.visited * 0.5

    def test_earlier_consistent_queries_are_also_valid(self, solved,
                                                       paper_demo):
        from repro.provenance import demo_consistent
        from repro.semantics import evaluate_tracking
        result, env = solved
        for query in result.queries:
            tracked = evaluate_tracking(query, env)
            assert demo_consistent(tracked.exprs, paper_demo.cells)

"""Candidate disambiguation."""

import pytest

from repro.interaction import (
    disambiguate_interactively,
    distinguishing_cells,
    partition_candidates,
)
from repro.lang import Env, Group, Partition, TableRef
from repro.semantics import evaluate


@pytest.fixture
def env(tiny_table):
    return Env.of(tiny_table)


@pytest.fixture
def candidates():
    """Three candidates: sum-per-ID, avg-per-ID, max-per-ID."""
    return [
        Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2),
        Group(TableRef("T"), keys=(0,), agg_func="avg", agg_col=2),
        Group(TableRef("T"), keys=(0,), agg_func="max", agg_col=2),
    ]


class TestPartition:
    def test_distinct_candidates_distinct_classes(self, candidates, env):
        classes = partition_candidates(candidates, env)
        assert len(classes) == 3

    def test_equivalent_candidates_merge(self, env):
        a = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        b = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2,
                  alias="Total")
        classes = partition_candidates([a, b], env)
        assert classes == [[0, 1]]


class TestDistinguishingCells:
    def test_found_on_aggregate_column(self, candidates, env):
        cells = distinguishing_cells(candidates, env)
        assert cells
        # the key column (col 0) never distinguishes; the aggregate does
        assert all(c.col == 1 for c in cells)

    def test_options_cover_all_candidates(self, candidates, env):
        cell = distinguishing_cells(candidates, env)[0]
        covered = sorted(i for _, ids in cell.options for i in ids)
        assert covered == [0, 1, 2]

    def test_no_cells_for_identical_candidates(self, env):
        q = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        assert distinguishing_cells([q, q], env) == []


class TestInteractiveLoop:
    def test_oracle_drives_to_target(self, candidates, env):
        target = candidates[1]  # the avg query
        target_out = evaluate(target, env)

        def oracle(cell):
            return target_out.cell(cell.row, cell.col)

        alive = disambiguate_interactively(candidates, env, oracle)
        assert alive == [1]

    def test_each_target_recoverable(self, candidates, env):
        for wanted in range(3):
            target_out = evaluate(candidates[wanted], env)

            def oracle(cell):
                return target_out.cell(cell.row, cell.col)

            assert disambiguate_interactively(candidates, env,
                                              oracle) == [wanted]

    def test_works_with_synthesizer_output(self, tiny_table, env):
        """End to end: synthesize candidates, then disambiguate."""
        from repro import Demonstration, SynthesisConfig, cell as cref, func
        from repro.synthesis import synthesize
        demo = Demonstration.of([
            [cref("T", 0, 0), func("sum", cref("T", 0, 2), cref("T", 1, 2),
                                   cref("T", 2, 2))],
            [cref("T", 3, 0), func("sum", cref("T", 3, 2), cref("T", 4, 2))],
        ])
        result = synthesize([tiny_table], demo,
                            config=SynthesisConfig(max_operators=2,
                                                   timeout_s=15, top_n=5))
        assert len(result.queries) >= 2
        gt = result.queries[0]
        gt_out = evaluate(gt, env)

        def oracle(cell):
            return gt_out.cell(cell.row, cell.col)

        alive = disambiguate_interactively(result.queries, env, oracle)
        classes = partition_candidates(
            [result.queries[i] for i in alive], env)
        assert len(classes) == 1  # survivors are observationally equivalent

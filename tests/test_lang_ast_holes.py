"""AST nodes, holes and post-order hole discipline."""

import pytest

from repro.lang import (
    Arithmetic,
    Group,
    Hole,
    Partition,
    TableRef,
    first_hole,
    holes_of,
    is_concrete,
)
from repro.lang.holes import fill, fill_first_hole, node_at


def _skeleton():
    return Arithmetic(
        Partition(Group(TableRef("T"), keys=Hole("keys"),
                        agg_func=Hole("agg_func"), agg_col=Hole("agg_col")),
                  keys=Hole("keys"), agg_func=Hole("agg_func"),
                  agg_col=Hole("agg_col")),
        func=Hole("func"), cols=Hole("cols"))


class TestHoleDiscovery:
    def test_concrete_query_has_no_holes(self, ground_truth):
        assert is_concrete(ground_truth)
        assert holes_of(ground_truth) == []

    def test_skeleton_hole_count(self):
        assert len(holes_of(_skeleton())) == 8

    def test_post_order_children_first(self):
        positions = holes_of(_skeleton())
        # deepest node (the Group, at path (0, 0)) comes first
        assert positions[0] == ((0, 0), "keys")
        # the Arithmetic root's holes come last
        assert positions[-1] == ((), "func")

    def test_group_param_order(self):
        positions = holes_of(_skeleton())
        group_fields = [f for path, f in positions if path == ((0, 0))]
        group_fields = [f for path, f in positions if path == (0, 0)]
        assert group_fields == ["keys", "agg_col", "agg_func"]

    def test_first_hole(self):
        assert first_hole(_skeleton()) == ((0, 0), "keys")
        assert first_hole(TableRef("T")) is None


class TestFilling:
    def test_fill_replaces_only_target(self):
        q = _skeleton()
        q2 = fill(q, ((0, 0), "keys"), (0, 1))
        group = node_at(q2, (0, 0))
        assert group.keys == (0, 1)
        assert isinstance(group.agg_func, Hole)
        # original untouched (immutability)
        assert isinstance(node_at(q, (0, 0)).keys, Hole)

    def test_fill_shares_unchanged_subtrees(self):
        q = _skeleton()
        q2 = fill(q, ((), "func"), "mul")
        assert node_at(q2, (0,)) is node_at(q, (0,))

    def test_fill_first_hole_progresses_to_concrete(self):
        q = _skeleton()
        values = [(0,), 2, "sum", (0,), 1, "cumsum", (1, 2), "div"]
        for v in values:
            q = fill_first_hole(q, v)
        assert is_concrete(q)

    def test_fill_first_hole_on_concrete_raises(self, ground_truth):
        with pytest.raises(ValueError):
            fill_first_hole(ground_truth, 1)


class TestNodeProtocol:
    def test_walk_post_order(self, ground_truth):
        names = [type(n).__name__ for n in ground_truth.walk()]
        assert names == ["TableRef", "Group", "Partition", "Arithmetic",
                         "Proj"]

    def test_with_children(self):
        g = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=1)
        g2 = g.with_children((TableRef("S"),))
        assert g2.child.name == "S"
        assert g2.keys == (0,)

    def test_queries_hashable(self, ground_truth):
        assert hash(ground_truth) == hash(ground_truth)
        assert ground_truth == ground_truth

    def test_join_param_fields_only_with_pred(self):
        from repro.lang import Join
        assert Join(TableRef("A"), TableRef("B")).param_fields() == ()
        assert Join(TableRef("A"), TableRef("B"),
                    pred=Hole("pred")).param_fields() == ("pred",)

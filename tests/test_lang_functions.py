"""Unit tests for the function registries (aggregates, rankers, arithmetic)."""

import pytest

from repro.errors import ExpressionError
from repro.lang.functions import (
    AGGREGATE_FUNCTIONS,
    ANALYTIC_FUNCTIONS,
    ARITHMETIC_FUNCTIONS,
    analytic_spec,
    apply_function,
    function_spec,
)


class TestRegistry:
    def test_paper_aggregates_present(self):
        assert set(AGGREGATE_FUNCTIONS) == {"sum", "avg", "max", "min", "count"}

    def test_paper_analytics_present(self):
        for name in ("cumsum", "rank", "dense_rank"):
            assert name in ANALYTIC_FUNCTIONS

    def test_unknown_function_rejected(self):
        with pytest.raises(ExpressionError):
            function_spec("median")

    def test_flattenable_set(self):
        assert function_spec("sum").flattenable
        assert function_spec("max").flattenable
        assert function_spec("min").flattenable
        assert not function_spec("avg").flattenable
        assert not function_spec("count").flattenable

    def test_commutativity(self):
        assert function_spec("add").commutative
        assert function_spec("mul").commutative
        assert not function_spec("sub").commutative
        assert not function_spec("div").commutative
        assert function_spec("sum").commutative

    def test_rank_style(self):
        assert function_spec("rank").arg_style == "ranked"


class TestAggregates:
    def test_sum(self):
        assert apply_function("sum", [1, 2, 3]) == 6

    def test_sum_skips_null(self):
        assert apply_function("sum", [1, None, 3]) == 4

    def test_sum_empty(self):
        assert apply_function("sum", []) == 0

    def test_avg(self):
        assert apply_function("avg", [2, 4]) == 3

    def test_avg_empty_is_null(self):
        assert apply_function("avg", [None]) is None

    def test_max_min(self):
        assert apply_function("max", [3, 9, 1]) == 9
        assert apply_function("min", [3, 9, 1]) == 1

    def test_count_excludes_null(self):
        assert apply_function("count", [1, None, "x"]) == 2


class TestRankers:
    def test_rank_ascending(self):
        # rank of value 5 among [5, 3, 8]: one smaller value -> rank 2
        assert apply_function("rank", [5, 5, 3, 8]) == 2

    def test_rank_desc(self):
        assert apply_function("rank_desc", [5, 5, 3, 8]) == 2

    def test_rank_ties_competition_style(self):
        # two values tie below: rank skips
        assert apply_function("rank", [9, 3, 3, 9]) == 3

    def test_dense_rank_ties(self):
        assert apply_function("dense_rank", [9, 3, 3, 9]) == 2

    def test_rank_requires_argument(self):
        with pytest.raises(ExpressionError):
            apply_function("rank", [])


class TestArithmetic:
    def test_all_binary(self):
        for name in ARITHMETIC_FUNCTIONS:
            assert function_spec(name).arity == 2

    def test_div_by_zero_is_null(self):
        assert apply_function("div", [1, 0]) is None

    def test_percent(self):
        assert apply_function("percent", [1, 4]) == 25

    def test_pct_change(self):
        assert apply_function("pct_change", [110, 100]) == pytest.approx(10.0)

    def test_null_propagates(self):
        assert apply_function("add", [None, 1]) is None

    def test_wrong_arity_rejected(self):
        with pytest.raises(ExpressionError):
            apply_function("add", [1, 2, 3])


class TestAnalyticSpecs:
    def test_cumsum_prefix(self):
        spec = analytic_spec("cumsum")
        assert spec.term_name == "sum"
        assert spec.row_args([10, 20, 30], 1) == (10, 20)
        assert spec.order_dependent

    def test_aggregate_window_sees_whole_group(self):
        spec = analytic_spec("sum")
        assert spec.row_args([1, 2, 3], 0) == (1, 2, 3)
        assert not spec.order_dependent

    def test_rank_args_put_own_value_first(self):
        spec = analytic_spec("rank")
        assert spec.row_args([7, 8, 9], 2) == (9, 7, 8, 9)

    def test_unknown_analytic_rejected(self):
        with pytest.raises(ExpressionError):
            analytic_spec("ntile")

    def test_window_evaluation_matches_direct(self):
        values = [4, 1, 3]
        spec = analytic_spec("cumsum")
        results = [apply_function(spec.term_name, spec.row_args(values, i))
                   for i in range(3)]
        assert results == [4, 5, 8]

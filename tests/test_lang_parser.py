"""The instruction-syntax parser and its round-trip with the renderer."""

import pytest

from repro.lang import Env, to_instructions
from repro.lang.ast import (
    Arithmetic,
    Filter,
    Group,
    Join,
    LeftJoin,
    Partition,
    Proj,
    Sort,
)
from repro.lang.parser import ParseError, parse_instructions
from repro.lang.predicates import ColCmp, ConstCmp
from repro.semantics import evaluate
from repro.table import Table


@pytest.fixture
def env(tiny_table):
    return Env.of(tiny_table)


class TestBasicParsing:
    def test_group_with_indices(self):
        q = parse_instructions("t1 <- group(T, [c0], sum, c2)")
        assert q == Group(q.child, keys=(0,), agg_func="sum", agg_col=2)

    def test_group_with_names(self, env):
        q = parse_instructions("t1 <- group(T, [ID], sum, Sales)", env)
        assert isinstance(q, Group)
        assert q.keys == (0,) and q.agg_col == 2

    def test_partition(self, env):
        q = parse_instructions(
            "t1 <- partition(T, [ID], cumsum, Sales)", env)
        assert isinstance(q, Partition)
        assert q.agg_func == "cumsum"

    def test_arithmetic(self, env):
        q = parse_instructions("t1 <- arithmetic(T, mul, [Units, Price])",
                               Env.of(Table.from_rows(
                                   "T", ["Units", "Price"], [[1, 2]])))
        assert isinstance(q, Arithmetic)
        assert q.cols == (0, 1)

    def test_filter_const(self, env):
        q = parse_instructions("t1 <- filter(T, Sales > 12)", env)
        assert isinstance(q, Filter)
        assert q.pred == ConstCmp(2, ">", 12)

    def test_filter_string_const(self, env):
        q = parse_instructions("t1 <- filter(T, ID == 'A')", env)
        assert q.pred == ConstCmp(0, "==", "A")

    def test_filter_col_col(self, env):
        q = parse_instructions("t1 <- filter(T, Quarter < Sales)", env)
        assert q.pred == ColCmp(1, "<", 2)

    def test_sort_and_proj(self, env):
        q = parse_instructions("""
            t1 <- sort(T, [Sales], desc)
            t2 <- proj(t1, [c0, c2])
        """, env)
        assert isinstance(q, Proj)
        assert isinstance(q.child, Sort)
        assert q.child.ascending is False

    def test_empty_keys(self, env):
        q = parse_instructions("t1 <- group(T, [], sum, c2)", env)
        assert q.keys == ()


class TestPipelines:
    def test_chained_intermediates(self, env):
        q = parse_instructions("""
            # the intro example
            t1 <- group(T, [ID], sum, Sales)
            t2 <- partition(t1, [], rank_desc, c1)
        """, env)
        assert isinstance(q, Partition)
        assert isinstance(q.child, Group)
        out = evaluate(q, env)
        assert out.n_rows == 2

    def test_join_with_pred(self, tiny_table):
        names = Table.from_rows("N", ["ID", "Label"], [["A", "x"]])
        env = Env.of(tiny_table, names)
        q = parse_instructions("t1 <- join(T, N, c0 == c3)", env)
        assert isinstance(q, Join)
        assert q.pred == ColCmp(0, "==", 3)

    def test_left_join(self, tiny_table):
        names = Table.from_rows("N", ["ID", "Label"], [["A", "x"]])
        env = Env.of(tiny_table, names)
        q = parse_instructions("t1 <- left_join(T, N, c0 == c3)", env)
        assert isinstance(q, LeftJoin)

    def test_round_trip_with_renderer(self, health_env):
        # alias-free variant of the running example (rendered names must be
        # reconstructible by the parser, which cannot know user aliases)
        gt = parse_instructions("""
            t1 <- group(T, [City, Quarter, Population], sum, Enrolled)
            t2 <- partition(t1, [City], cumsum, c3)
            t3 <- arithmetic(t2, percent, [c4, c2])
        """, health_env)
        text = to_instructions(gt, health_env)
        parsed = parse_instructions(text, health_env)
        assert parsed == gt
        assert evaluate(parsed, health_env).same_rows(
            evaluate(gt, health_env))


class TestErrors:
    def test_unknown_operator(self):
        with pytest.raises(ParseError):
            parse_instructions("t1 <- pivot(T, [c0])")

    def test_unknown_function(self, env):
        with pytest.raises(ParseError):
            parse_instructions("t1 <- group(T, [c0], median, c2)", env)

    def test_unknown_column_name(self, env):
        with pytest.raises(ParseError):
            parse_instructions("t1 <- group(T, [Nope], sum, c2)", env)

    def test_unknown_table(self, env):
        with pytest.raises(ParseError):
            parse_instructions("t1 <- group(X, [c0], sum, c2)", env)

    def test_wrong_arity(self, env):
        with pytest.raises(ParseError):
            parse_instructions("t1 <- group(T, [c0], sum)", env)

    def test_bad_predicate(self, env):
        with pytest.raises(ParseError):
            parse_instructions("t1 <- filter(T, Sales !! 3)", env)

    def test_empty_text(self, env):
        with pytest.raises(ParseError):
            parse_instructions("   \n  # just a comment\n", env)

    def test_bad_sort_direction(self, env):
        with pytest.raises(ParseError):
            parse_instructions("t1 <- sort(T, [c0], sideways)", env)

"""Unit tests for filter/join predicates."""

from repro.lang.predicates import (
    AndPred,
    ColCmp,
    ConstCmp,
    FalsePred,
    TruePred,
)


class TestBasicPredicates:
    def test_true_false(self):
        assert TruePred().evaluate([1])
        assert not FalsePred().evaluate([1])

    def test_col_cmp(self):
        row = [3, 5]
        assert ColCmp(0, "<", 1).evaluate(row)
        assert not ColCmp(0, ">", 1).evaluate(row)
        assert ColCmp(0, "!=", 1).evaluate(row)

    def test_col_eq_with_floats(self):
        assert ColCmp(0, "==", 1).evaluate([2, 2.0])

    def test_const_cmp(self):
        assert ConstCmp(0, ">=", 10).evaluate([10])
        assert not ConstCmp(0, "<", 10).evaluate([10])

    def test_string_comparison(self):
        assert ConstCmp(0, "==", "Math").evaluate(["Math", 1])
        assert not ConstCmp(0, "==", "Math").evaluate(["History", 1])

    def test_null_comparisons_false(self):
        assert not ColCmp(0, "==", 1).evaluate([None, None])
        assert not ConstCmp(0, "<", 5).evaluate([None])

    def test_and(self):
        pred = AndPred((ConstCmp(0, ">", 1), ConstCmp(0, "<", 5)))
        assert pred.evaluate([3])
        assert not pred.evaluate([7])


class TestColumnsUsed:
    def test_col_cmp(self):
        assert ColCmp(1, "<", 3).columns_used() == frozenset((1, 3))

    def test_const_cmp(self):
        assert ConstCmp(2, "==", "x").columns_used() == frozenset((2,))

    def test_and_union(self):
        pred = AndPred((ColCmp(0, "<", 1), ConstCmp(4, ">", 0)))
        assert pred.columns_used() == frozenset((0, 1, 4))

    def test_true_uses_nothing(self):
        assert TruePred().columns_used() == frozenset()


class TestHashability:
    def test_predicates_usable_as_dict_keys(self):
        d = {ColCmp(0, "<", 1): "a", ConstCmp(0, "==", 5): "b"}
        assert d[ColCmp(0, "<", 1)] == "a"

    def test_equality_is_structural(self):
        assert ColCmp(0, "<", 1) == ColCmp(0, "<", 1)
        assert ColCmp(0, "<", 1) != ColCmp(0, "<=", 1)

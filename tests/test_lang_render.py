"""SQL and instruction-style rendering."""

import pytest

from repro.errors import HoleError
from repro.lang import (
    Arithmetic,
    Env,
    Filter,
    Group,
    Hole,
    Join,
    Partition,
    Proj,
    Sort,
    TableRef,
    to_instructions,
    to_sql,
)
from repro.lang.naming import fresh_name, joined_columns, output_columns
from repro.lang.predicates import ColCmp, ConstCmp


@pytest.fixture
def env(tiny_table):
    return Env.of(tiny_table)


class TestNaming:
    def test_fresh_name(self):
        assert fresh_name("x", ["x", "x_2"]) == "x_3"
        assert fresh_name("y", ["x"]) == "y"

    def test_joined_columns(self):
        assert joined_columns(["a", "b"], ["b", "c"]) == ["a", "b", "b_2", "c"]

    def test_group_output_columns(self, env):
        q = Group(TableRef("T"), keys=(0, 1), agg_func="sum", agg_col=2)
        assert output_columns(q, env) == ["ID", "Quarter", "sum_Sales"]

    def test_alias_respected(self, env):
        q = Partition(TableRef("T"), keys=(0,), agg_func="cumsum", agg_col=2,
                      alias="Running")
        assert output_columns(q, env)[-1] == "Running"

    def test_arithmetic_default_name(self, env):
        q = Arithmetic(TableRef("T"), func="div", cols=(2, 1))
        assert output_columns(q, env)[-1] == "div(Sales, Quarter)"

    def test_partial_query_raises(self, env):
        q = Group(TableRef("T"), keys=Hole("keys"), agg_func="sum", agg_col=2)
        with pytest.raises(HoleError):
            output_columns(q, env)


class TestSqlRendering:
    def test_group_renders_group_by(self, env):
        q = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        sql = to_sql(q, env)
        assert "GROUP BY ID" in sql
        assert "SUM(Sales)" in sql

    def test_partition_renders_over(self, env):
        q = Partition(TableRef("T"), keys=(0,), agg_func="cumsum", agg_col=2)
        sql = to_sql(q, env)
        assert "CUMSUM(Sales) OVER (PARTITION BY ID)" in sql

    def test_filter_renders_where(self, env):
        q = Filter(TableRef("T"), ConstCmp(2, ">", 10))
        assert "WHERE Sales > 10" in to_sql(q, env)

    def test_string_constants_quoted(self, env):
        q = Filter(TableRef("T"), ConstCmp(0, "==", "A"))
        assert "WHERE ID = 'A'" in to_sql(q, env)

    def test_join_renders_on(self, tiny_table):
        from repro.table import Table
        other = Table.from_rows("N", ["ID", "L"], [["A", 1]])
        env = Env.of(tiny_table, other)
        q = Join(TableRef("T"), TableRef("N"), pred=ColCmp(0, "==", 3))
        sql = to_sql(q, env)
        assert "JOIN" in sql and "ON ID = ID_2" in sql

    def test_arithmetic_uses_template(self, env):
        q = Arithmetic(TableRef("T"), func="percent", cols=(2, 1))
        assert "Sales / Quarter * 100" in to_sql(q, env)

    def test_sort_renders_order_by(self, env):
        q = Sort(TableRef("T"), cols=(2,), ascending=False)
        assert "ORDER BY Sales DESC" in to_sql(q, env)

    def test_running_example_matches_paper_shape(self, health_env,
                                                 ground_truth):
        sql = to_sql(ground_truth, health_env)
        assert "GROUP BY City, Quarter, Population" in sql
        assert "OVER (PARTITION BY City)" in sql
        assert sql.rstrip().endswith(";")

    def test_partial_query_rejected(self, env):
        q = Filter(TableRef("T"), Hole("pred"))
        with pytest.raises(HoleError):
            to_sql(q, env)


class TestInstructionRendering:
    def test_paper_style_lines(self, health_env, ground_truth):
        text = to_instructions(ground_truth, health_env)
        lines = text.splitlines()
        assert lines[0].startswith("t1 <- group(T, [City, Quarter, Population]")
        assert "partition(t1, [City], cumsum" in lines[1]
        assert "arithmetic(t2, percent" in lines[2]

    def test_holes_render_as_boxes(self, env):
        q = Group(TableRef("T"), keys=Hole("keys"), agg_func=Hole("agg_func"),
                  agg_col=Hole("agg_col"))
        assert "□" in to_instructions(q, env)

    def test_works_without_env(self, ground_truth):
        text = to_instructions(ground_truth)
        assert "group(T" in text

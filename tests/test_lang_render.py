"""SQL and instruction-style rendering."""

import pytest

from repro.errors import HoleError
from repro.lang import (
    Arithmetic,
    Env,
    Filter,
    Group,
    Hole,
    Join,
    Partition,
    Proj,
    Sort,
    TableRef,
    to_instructions,
    to_sql,
)
from repro.lang.naming import fresh_name, joined_columns, output_columns
from repro.lang.predicates import ColCmp, ConstCmp


@pytest.fixture
def env(tiny_table):
    return Env.of(tiny_table)


class TestNaming:
    def test_fresh_name(self):
        assert fresh_name("x", ["x", "x_2"]) == "x_3"
        assert fresh_name("y", ["x"]) == "y"

    def test_joined_columns(self):
        assert joined_columns(["a", "b"], ["b", "c"]) == ["a", "b", "b_2", "c"]

    def test_group_output_columns(self, env):
        q = Group(TableRef("T"), keys=(0, 1), agg_func="sum", agg_col=2)
        assert output_columns(q, env) == ["ID", "Quarter", "sum_Sales"]

    def test_alias_respected(self, env):
        q = Partition(TableRef("T"), keys=(0,), agg_func="cumsum", agg_col=2,
                      alias="Running")
        assert output_columns(q, env)[-1] == "Running"

    def test_arithmetic_default_name(self, env):
        q = Arithmetic(TableRef("T"), func="div", cols=(2, 1))
        assert output_columns(q, env)[-1] == "div(Sales, Quarter)"

    def test_partial_query_raises(self, env):
        q = Group(TableRef("T"), keys=Hole("keys"), agg_func="sum", agg_col=2)
        with pytest.raises(HoleError):
            output_columns(q, env)


class TestSqlRendering:
    def test_group_renders_group_by(self, env):
        q = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        sql = to_sql(q, env)
        assert "GROUP BY ID" in sql
        assert "SUM(Sales)" in sql

    def test_partition_renders_over(self, env):
        q = Partition(TableRef("T"), keys=(0,), agg_func="cumsum", agg_col=2)
        sql = to_sql(q, env)
        assert "CUMSUM(Sales) OVER (PARTITION BY ID)" in sql

    def test_filter_renders_where(self, env):
        q = Filter(TableRef("T"), ConstCmp(2, ">", 10))
        assert "WHERE Sales > 10" in to_sql(q, env)

    def test_string_constants_quoted(self, env):
        q = Filter(TableRef("T"), ConstCmp(0, "==", "A"))
        assert "WHERE ID = 'A'" in to_sql(q, env)

    def test_join_renders_on(self, tiny_table):
        from repro.table import Table
        other = Table.from_rows("N", ["ID", "L"], [["A", 1]])
        env = Env.of(tiny_table, other)
        q = Join(TableRef("T"), TableRef("N"), pred=ColCmp(0, "==", 3))
        sql = to_sql(q, env)
        assert "JOIN" in sql and "ON a.ID = b.ID" in sql

    def test_join_projects_renamed_duplicates(self, tiny_table):
        # Both sides share every column name; a bare SELECT * would emit
        # ambiguous duplicates while the engine renames via joined_columns.
        env = Env.of(tiny_table)
        q = Join(TableRef("T"), TableRef("T"), pred=ColCmp(0, "==", 3))
        sql = to_sql(q, env)
        assert "b.ID AS ID_2" in sql
        assert "b.Sales AS Sales_2" in sql

    def test_arithmetic_uses_template(self, env):
        q = Arithmetic(TableRef("T"), func="percent", cols=(2, 1))
        assert "Sales / Quarter * 100" in to_sql(q, env)

    def test_sort_renders_order_by(self, env):
        q = Sort(TableRef("T"), cols=(2,), ascending=False)
        assert "ORDER BY Sales DESC" in to_sql(q, env)

    def test_running_example_matches_paper_shape(self, health_env,
                                                 ground_truth):
        sql = to_sql(ground_truth, health_env)
        assert "GROUP BY City, Quarter, Population" in sql
        assert "OVER (PARTITION BY City)" in sql
        assert sql.rstrip().endswith(";")

    def test_partial_query_rejected(self, env):
        q = Filter(TableRef("T"), Hole("pred"))
        with pytest.raises(HoleError):
            to_sql(q, env)


class TestInstructionRendering:
    def test_paper_style_lines(self, health_env, ground_truth):
        text = to_instructions(ground_truth, health_env)
        lines = text.splitlines()
        assert lines[0].startswith("t1 <- group(T, [City, Quarter, Population]")
        assert "partition(t1, [City], cumsum" in lines[1]
        assert "arithmetic(t2, percent" in lines[2]

    def test_holes_render_as_boxes(self, env):
        q = Group(TableRef("T"), keys=Hole("keys"), agg_func=Hole("agg_func"),
                  agg_col=Hole("agg_col"))
        assert "□" in to_instructions(q, env)

    def test_works_without_env(self, ground_truth):
        text = to_instructions(ground_truth)
        assert "group(T" in text


class TestDialects:
    def test_dialect_registry(self):
        from repro.lang import DIALECTS, Dialect, resolve_dialect

        assert set(DIALECTS) == {"display", "sqlite", "duckdb"}
        assert not DIALECTS["display"].executable
        assert DIALECTS["sqlite"].executable
        assert DIALECTS["duckdb"].executable
        assert resolve_dialect("sqlite") is DIALECTS["sqlite"]
        assert isinstance(resolve_dialect(DIALECTS["duckdb"]), Dialect)

    def test_unknown_dialect_rejected(self, env):
        from repro.errors import SqlRenderError

        with pytest.raises(SqlRenderError):
            to_sql(TableRef("T"), env, "postgres")

    def test_display_sort_is_display_only(self, env):
        """Display keeps the paper's subquery ORDER BY (not real SQL —
        subquery ordering does not survive the enclosing query); the
        executable dialects thread ordering to the outermost SELECT via
        the row ordinal instead."""
        q = Filter(Sort(TableRef("T"), cols=(2,), ascending=True),
                   ConstCmp(2, ">", 0))
        display = to_sql(q, env)
        assert ") ORDER BY Sales ASC" in display          # inside the subquery
        executable = to_sql(q, env, "sqlite")
        assert executable.rstrip(";").endswith('ORDER BY "q"."__ord"')
        assert 'ROW_NUMBER() OVER (ORDER BY "Sales" ASC NULLS LAST, ' \
            '"__ord" ASC)' in executable

    def test_ordinal_name_avoids_collisions(self, tiny_table):
        from repro.lang import ordinal_name
        from repro.table import Table

        clash = Table.from_rows("C", ["__ord", "x"], [[1, 2]])
        assert ordinal_name(Env.of(tiny_table)) == "__ord"
        assert ordinal_name(Env.of(clash)) == "__ord_2"

    def test_executable_rejects_derived_ordinal_collision(self, env):
        from repro.errors import SqlRenderError

        q = Group(TableRef("T"), keys=(), agg_func="sum", agg_col=2,
                  alias="__ord")
        with pytest.raises(SqlRenderError):
            to_sql(q, env, "sqlite")
        assert "__ord" in to_sql(q, env)    # display does not care


class TestLiteralEscaping:
    """Satellite regression: constants render as *SQL* literals."""

    def test_single_quotes_doubled(self, env):
        q = Filter(TableRef("T"), ConstCmp(0, "==", "O'Brien"))
        assert "'O''Brien'" in to_sql(q, env)
        assert "'O''Brien'" in to_sql(q, env, "sqlite")

    def test_bool_and_null_are_sql_keywords(self, env):
        q = Filter(TableRef("T"), ConstCmp(1, "!=", None))
        sql = to_sql(q, env)
        assert "<> NULL" in sql and "None" not in sql
        q = Filter(TableRef("T"), ConstCmp(1, "==", True))
        sql = to_sql(q, env)
        assert "= TRUE" in sql and "True" not in sql

    def test_equality_operator_is_sql(self, env):
        q = Filter(TableRef("T"), ConstCmp(2, "==", 10))
        assert "Sales = 10" in to_sql(q, env)
        q = Filter(TableRef("T"), ConstCmp(2, "!=", 10))
        assert "Sales <> 10" in to_sql(q, env)

    def test_weird_identifiers_quoted(self):
        from repro.table import Table

        t = Table.from_rows('W', ['a"b', 'sel ect'], [[1, 2]])
        sql = to_sql(Proj(TableRef("W"), cols=(0,)), Env.of(t), "sqlite")
        assert '"a""b"' in sql

    def test_unrepresentable_constants_rejected(self, env):
        from repro.errors import SqlRenderError

        bad_int = Filter(TableRef("T"), ConstCmp(2, ">", 2**64))
        with pytest.raises(SqlRenderError):
            to_sql(bad_int, env, "sqlite")
        bad_float = Filter(TableRef("T"), ConstCmp(2, ">", float("nan")))
        with pytest.raises(SqlRenderError):
            to_sql(bad_float, env, "sqlite")
        bad_str = Filter(TableRef("T"), ConstCmp(0, "==", "a\x00b"))
        with pytest.raises(SqlRenderError):
            to_sql(bad_str, env, "sqlite")


class TestGoldenSql:
    """Full-text snapshots: one query per AST node, display and sqlite.

    These lock the rendered shape — whitespace included — so renderer
    changes are reviewed as golden diffs, not discovered by the oracle.
    """

    @pytest.fixture
    def tiny_env(self, tiny_table):
        return Env.of(tiny_table)

    def _check(self, query, env, dialect, expected):
        assert to_sql(query, env, dialect) == expected

    def test_filter_display(self, tiny_env):
        q = Filter(TableRef("T"), ConstCmp(0, "==", "O'Brien"))
        self._check(q, tiny_env, "display",
                    "SELECT * FROM (\n"
                    "  T\n"
                    ") WHERE ID = 'O''Brien';")

    def test_filter_sqlite(self, tiny_env):
        q = Filter(TableRef("T"), ConstCmp(0, "==", "O'Brien"))
        self._check(
            q, tiny_env, "sqlite",
            'SELECT "ID", "Quarter", "Sales" FROM (\n'
            '  SELECT "ID", "Quarter", "Sales", "__ord" FROM (\n'
            '    SELECT "ID", "Quarter", "Sales", "__ord" FROM "T"\n'
            '  ) AS "t" WHERE "ID" = \'O\'\'Brien\'\n'
            ') AS "q" ORDER BY "q"."__ord";')

    def test_proj_display(self, tiny_env):
        q = Proj(TableRef("T"), cols=(2, 0))
        self._check(q, tiny_env, "display",
                    "SELECT Sales, ID FROM (\n"
                    "  T\n"
                    ");")

    def test_proj_sqlite(self, tiny_env):
        q = Proj(TableRef("T"), cols=(2, 0))
        self._check(
            q, tiny_env, "sqlite",
            'SELECT "Sales", "ID" FROM (\n'
            '  SELECT "Sales" AS "Sales", "ID" AS "ID", "__ord" FROM (\n'
            '    SELECT "ID", "Quarter", "Sales", "__ord" FROM "T"\n'
            '  ) AS "t"\n'
            ') AS "q" ORDER BY "q"."__ord";')

    def test_sort_display(self, tiny_env):
        q = Sort(TableRef("T"), cols=(2,), ascending=False)
        self._check(q, tiny_env, "display",
                    "SELECT * FROM (\n"
                    "  T\n"
                    ") ORDER BY Sales DESC;")

    def test_sort_sqlite(self, tiny_env):
        q = Sort(TableRef("T"), cols=(2,), ascending=False)
        self._check(
            q, tiny_env, "sqlite",
            'SELECT "ID", "Quarter", "Sales" FROM (\n'
            '  SELECT "ID", "Quarter", "Sales", ROW_NUMBER() OVER '
            '(ORDER BY "Sales" DESC NULLS FIRST, "__ord" ASC) '
            'AS "__ord" FROM (\n'
            '    SELECT "ID", "Quarter", "Sales", "__ord" FROM "T"\n'
            '  ) AS "t"\n'
            ') AS "q" ORDER BY "q"."__ord";')

    def test_group_display(self, tiny_env):
        q = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        self._check(q, tiny_env, "display",
                    "SELECT ID, SUM(Sales) AS sum_Sales FROM (\n"
                    "  T\n"
                    ") GROUP BY ID;")

    def test_group_sqlite(self, tiny_env):
        q = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        self._check(
            q, tiny_env, "sqlite",
            'SELECT "ID", "sum_Sales" FROM (\n'
            '  SELECT "ID" AS "ID", COALESCE(SUM("Sales"), 0) AS "sum_Sales", '
            'MIN("__ord") AS "__ord" FROM (\n'
            '    SELECT "ID", "Quarter", "Sales", "__ord" FROM "T"\n'
            '  ) AS "t" GROUP BY "ID"\n'
            ') AS "q" ORDER BY "q"."__ord";')

    def test_group_no_keys_sqlite(self, tiny_env):
        # Empty key set: one group over all rows but *no* group on empty
        # input — grouping by a constant expression over a real column
        # (unlike a bare aggregate, which always yields one row).
        q = Group(TableRef("T"), keys=(), agg_func="avg", agg_col=2)
        self._check(
            q, tiny_env, "sqlite",
            'SELECT "avg_Sales" FROM (\n'
            '  SELECT AVG("Sales") AS "avg_Sales", MIN("__ord") AS "__ord" '
            'FROM (\n'
            '    SELECT "ID", "Quarter", "Sales", "__ord" FROM "T"\n'
            '  ) AS "t" GROUP BY "__ord" * 0\n'
            ') AS "q" ORDER BY "q"."__ord";')

    def test_partition_display(self, tiny_env):
        q = Partition(TableRef("T"), keys=(0,), agg_func="cumsum", agg_col=2)
        self._check(
            q, tiny_env, "display",
            "SELECT *, CUMSUM(Sales) OVER (PARTITION BY ID) "
            "AS cumsum_Sales FROM (\n"
            "  T\n"
            ");")

    def test_partition_cumsum_sqlite(self, tiny_env):
        # CUMSUM becomes a standard running-sum window frame; COALESCE
        # matches the engine's sum-of-all-NULLs = 0.
        q = Partition(TableRef("T"), keys=(0,), agg_func="cumsum", agg_col=2)
        self._check(
            q, tiny_env, "sqlite",
            'SELECT "ID", "Quarter", "Sales", "cumsum_Sales" FROM (\n'
            '  SELECT "ID", "Quarter", "Sales", COALESCE(SUM("Sales") OVER '
            '(PARTITION BY "ID" ORDER BY "__ord" ROWS BETWEEN UNBOUNDED '
            'PRECEDING AND CURRENT ROW), 0) AS "cumsum_Sales", "__ord" '
            'FROM (\n'
            '    SELECT "ID", "Quarter", "Sales", "__ord" FROM "T"\n'
            '  ) AS "t"\n'
            ') AS "q" ORDER BY "q"."__ord";')

    def test_partition_rank_desc_sqlite(self, tiny_env):
        # Engine rank_desc puts NULL rows at rank 1 while excluding NULLs
        # from every non-NULL row's comparison pool; no single NULLS
        # FIRST/LAST placement does both, hence the CASE pin.
        q = Partition(TableRef("T"), keys=(), agg_func="rank_desc",
                      agg_col=2)
        self._check(
            q, tiny_env, "sqlite",
            'SELECT "ID", "Quarter", "Sales", "rank_desc_Sales" FROM (\n'
            '  SELECT "ID", "Quarter", "Sales", CASE WHEN "Sales" IS NULL '
            'THEN 1 ELSE RANK() OVER (ORDER BY "Sales" DESC NULLS LAST) END '
            'AS "rank_desc_Sales", "__ord" FROM (\n'
            '    SELECT "ID", "Quarter", "Sales", "__ord" FROM "T"\n'
            '  ) AS "t"\n'
            ') AS "q" ORDER BY "q"."__ord";')

    def test_arithmetic_display(self, tiny_env):
        q = Arithmetic(TableRef("T"), func="div", cols=(2, 1))
        self._check(q, tiny_env, "display",
                    "SELECT *, Sales / Quarter AS div(Sales, Quarter) "
                    "FROM (\n"
                    "  T\n"
                    ");")

    def test_arithmetic_div_sqlite(self, tiny_env):
        # True division with the engine's div-by-zero -> NULL semantics
        # (SQLite would truncate int division and DuckDB would raise).
        q = Arithmetic(TableRef("T"), func="div", cols=(2, 1))
        self._check(
            q, tiny_env, "sqlite",
            'SELECT "ID", "Quarter", "Sales", "div(Sales, Quarter)" FROM (\n'
            '  SELECT "ID", "Quarter", "Sales", CASE WHEN "Quarter" = 0 '
            'THEN NULL ELSE CAST("Sales" AS REAL) / "Quarter" END '
            'AS "div(Sales, Quarter)", "__ord" FROM (\n'
            '    SELECT "ID", "Quarter", "Sales", "__ord" FROM "T"\n'
            '  ) AS "t"\n'
            ') AS "q" ORDER BY "q"."__ord";')

    def test_arithmetic_div_duckdb(self, tiny_env):
        q = Arithmetic(TableRef("T"), func="div", cols=(2, 1))
        self._check(
            q, tiny_env, "duckdb",
            'SELECT "ID", "Quarter", "Sales", "div(Sales, Quarter)" FROM (\n'
            '  SELECT "ID", "Quarter", "Sales", CASE WHEN "Quarter" = 0 '
            'THEN NULL ELSE CAST("Sales" AS DOUBLE) / "Quarter" END '
            'AS "div(Sales, Quarter)", "__ord" FROM (\n'
            '    SELECT "ID", "Quarter", "Sales", "__ord" FROM "T"\n'
            '  ) AS "t"\n'
            ') AS "q" ORDER BY "q"."__ord";')

    def test_join_display(self, tiny_env):
        q = Join(TableRef("T"), TableRef("T"), pred=ColCmp(0, "==", 3))
        self._check(
            q, tiny_env, "display",
            "SELECT a.ID, a.Quarter, a.Sales, b.ID AS ID_2, "
            "b.Quarter AS Quarter_2, b.Sales AS Sales_2 FROM (\n"
            "  T\n"
            ") AS a JOIN (\n"
            "  T\n"
            ") AS b ON a.ID = b.ID;")

    def test_join_sqlite(self, tiny_env):
        q = Join(TableRef("T"), TableRef("T"), pred=ColCmp(0, "==", 3))
        self._check(
            q, tiny_env, "sqlite",
            'SELECT "ID", "Quarter", "Sales", "ID_2", "Quarter_2", '
            '"Sales_2" FROM (\n'
            '  SELECT "a"."ID" AS "ID", "a"."Quarter" AS "Quarter", '
            '"a"."Sales" AS "Sales", "b"."ID" AS "ID_2", '
            '"b"."Quarter" AS "Quarter_2", "b"."Sales" AS "Sales_2", '
            'ROW_NUMBER() OVER (ORDER BY "a"."__ord", "b"."__ord") '
            'AS "__ord" FROM (\n'
            '    SELECT "ID", "Quarter", "Sales", "__ord" FROM "T"\n'
            '  ) AS "a" JOIN (\n'
            '    SELECT "ID", "Quarter", "Sales", "__ord" FROM "T"\n'
            '  ) AS "b" ON "a"."ID" = "b"."ID"\n'
            ') AS "q" ORDER BY "q"."__ord";')

    def test_left_join_display(self, tiny_env):
        from repro.lang import LeftJoin

        q = LeftJoin(TableRef("T"), TableRef("T"), pred=ColCmp(1, "==", 4))
        self._check(
            q, tiny_env, "display",
            "SELECT a.ID, a.Quarter, a.Sales, b.ID AS ID_2, "
            "b.Quarter AS Quarter_2, b.Sales AS Sales_2 FROM (\n"
            "  T\n"
            ") AS a LEFT JOIN (\n"
            "  T\n"
            ") AS b ON a.Quarter = b.Quarter;")

    def test_cross_join_sqlite_uses_cross_join(self, tiny_env):
        q = Join(TableRef("T"), TableRef("T"), pred=None)
        sql = to_sql(q, tiny_env, "sqlite")
        assert "CROSS JOIN" in sql and " ON " not in sql

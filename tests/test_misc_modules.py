"""Coverage for the small supporting modules: errors, timers, rng, size,
datagen determinism, abstraction cells, the space counter."""

import time

from repro.abstraction.cells import (
    HEAD_AGGREGATE,
    HEAD_ANY,
    HEAD_ARITHMETIC,
    HEAD_RANKER,
    HEAD_REF,
    HEAD_WINDOW,
    AbstractCell,
    AbstractTable,
    head_matches,
)
from repro.benchmarks import datagen as dg
from repro.errors import (
    BenchmarkError,
    EvaluationError,
    ExpressionError,
    HoleError,
    ReproError,
    SchemaError,
    SynthesisError,
    TableError,
)
from repro.lang import Env, TableRef
from repro.lang.size import operator_count, query_depth
from repro.provenance.expr import CellRef
from repro.util.rng import stable_rng, stable_seed
from repro.util.timer import Deadline, Stopwatch


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(TableError, ReproError)
        assert issubclass(SchemaError, TableError)
        assert issubclass(HoleError, EvaluationError)
        for err in (ExpressionError, SynthesisError, BenchmarkError):
            assert issubclass(err, ReproError)

    def test_single_catch_point(self):
        try:
            raise HoleError("x")
        except ReproError:
            pass


class TestRng:
    def test_stable_seed_deterministic(self):
        assert stable_seed("x") == stable_seed("x")
        assert stable_seed("x") != stable_seed("y")

    def test_stable_rng_streams(self):
        a = stable_rng("lbl", 1).random()
        b = stable_rng("lbl", 1).random()
        c = stable_rng("lbl", 2).random()
        assert a == b
        assert a != c


class TestTimer:
    def test_stopwatch_monotone(self):
        w = Stopwatch()
        first = w.elapsed()
        second = w.elapsed()
        assert second >= first >= 0

    def test_deadline_none_never_expires(self):
        d = Deadline(None)
        assert not d.expired()
        assert d.remaining() is None

    def test_deadline_expires(self):
        d = Deadline(0.0)
        time.sleep(0.01)
        assert d.expired()
        assert d.remaining() == 0.0


class TestSize:
    def test_operator_count_excludes_table_refs(self, ground_truth):
        assert operator_count(TableRef("T")) == 0
        assert operator_count(ground_truth) == 4  # group+partition+arith+proj

    def test_query_depth(self, ground_truth):
        assert query_depth(ground_truth) == 4
        assert query_depth(TableRef("T")) == 0


class TestDatagen:
    def test_tables_deterministic(self):
        assert dg.sales_by_region_quarter().rows == \
            dg.sales_by_region_quarter().rows
        assert dg.tpcds_store_sales().rows == dg.tpcds_store_sales().rows

    def test_seed_changes_data(self):
        assert dg.product_sales(seed=0).rows != dg.product_sales(seed=9).rows

    def test_shuffled_preserves_bag(self):
        t = dg.stock_prices()
        s = dg.shuffled(t, seed=5)
        assert s.same_rows(t)
        assert s.rows != t.rows

    def test_fk_metadata_on_star_schema(self):
        ss = dg.tpcds_store_sales()
        fk_targets = {fk.ref_table for fk in ss.schema.foreign_keys}
        assert fk_targets == {"date_dim", "item", "store"}

    def test_orders_customers_fk(self):
        orders, customers = dg.orders_with_customers()
        assert orders.schema.foreign_keys[0].ref_table == "customers"
        cust_ids = set(customers.column_values("CustomerId"))
        assert set(orders.column_values("CustomerId")) <= cust_ids


class TestAbstractCells:
    def test_head_matches_any(self):
        for kind in (HEAD_REF, HEAD_AGGREGATE, HEAD_RANKER, HEAD_ARITHMETIC):
            assert head_matches(kind, HEAD_ANY)

    def test_head_window_covers_aggregates_and_ranks(self):
        assert head_matches(HEAD_AGGREGATE, HEAD_WINDOW)
        assert head_matches(HEAD_RANKER, HEAD_WINDOW)
        assert not head_matches(HEAD_ARITHMETIC, HEAD_WINDOW)
        assert not head_matches(HEAD_REF, HEAD_WINDOW)

    def test_exact_head_match(self):
        assert head_matches(HEAD_REF, HEAD_REF)
        assert not head_matches(HEAD_REF, HEAD_AGGREGATE)

    def test_table_accessors(self):
        ref = CellRef("T", 0, 0)
        cell = AbstractCell.of_ref(ref, 5)
        table = AbstractTable(((cell, cell), (cell, cell)))
        assert table.n_rows == 2 and table.n_cols == 2
        assert table.column(1) == [cell, cell]
        assert table.column_known((0, 1))
        assert table.all_refs() == frozenset((ref,))
        assert table.row_refs(0) == frozenset((ref,))

    def test_unknown_cell(self):
        c = AbstractCell.unknown(frozenset(), HEAD_AGGREGATE)
        assert not c.known
        assert c.head == HEAD_AGGREGATE


class TestSpaceCounter:
    def test_counts_exact_small_space(self, tiny_table):
        from repro.experiments.space import count_search_space
        from repro.synthesis import SynthesisConfig
        env = Env.of(tiny_table)
        config = SynthesisConfig(max_operators=1,
                                 operator_pool=("group",),
                                 allow_empty_keys=False)
        count, exact = count_search_space(env, config)
        assert exact
        # keys subsets of 3 cols (size 1..2) x agg cols x compatible funcs:
        # enumerate by hand: 6 key choices; each leaves 1-2 agg cols with
        # 5 funcs for numeric, 1 (count) for string
        assert count > 10

    def test_cap_stops_early(self, tiny_table):
        from repro.experiments.space import count_search_space
        from repro.synthesis import SynthesisConfig
        env = Env.of(tiny_table)
        config = SynthesisConfig(max_operators=2)
        count, exact = count_search_space(env, config, cap=5)
        assert not exact
        assert count >= 5

"""Real-database differential suite: engine vs SQLite / DuckDB.

The executable renderer plus the oracle loader promise end-to-end that
``to_sql(query, env, dialect)`` executed on a real database reproduces
``EvalEngine.evaluate(query, env)`` — rows *and* row order, under
``table.values`` equality.  This suite holds that promise three ways:

* every registry task's ground-truth query and its budgeted-synthesis
  ranked queries execute and match on every available database;
* 300+ seeded fuzz plans from the SQL profile
  (:func:`repro.oracle.fuzz.sql_fuzz_case`) match, with a floor on how
  many cases actually compared (a harness that silently skips everything
  would otherwise stay green);
* an engineered renderer bug (a dialect clone with the SUM-coalesce quirk
  disabled) is caught as a mismatch and shrunk to a minimal plan.

SQLite comes from the standard library; the DuckDB legs skip cleanly when
the module is absent (CI runs an oracle job with it installed).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.benchmarks import all_tasks
from repro.engine import RowEngine
from repro.lang import Env, Filter, Group, Partition, Sort, TableRef
from repro.lang.predicates import ConstCmp
from repro.lang.size import operator_count
from repro.lang.sql_render import DIALECTS
from repro.oracle import (
    HAVE_DUCKDB,
    Oracle,
    check_query,
    minimize,
    oracle_value_eq,
)
from repro.oracle.fuzz import sql_fuzz_case
from repro.synthesis.synthesizer import Synthesizer
from repro.table.table import Table

#: Same budget as the cross-backend differential sweep: deterministic
#: search prefixes, several skeletons per task, tens of seconds total.
VISITED_BUDGET = 400
#: Ranked queries per task fed to the databases.
RANKED_CAP = 4

#: Seeded SQL-profile fuzz plans (acceptance bar: >= 300).
N_FUZZ_CASES = 300
BATCH = 25
#: Of each batch, at least this many cases must actually compare — the
#: SQL profile grows plans against the engine precisely so that skips
#: (ill-typed plans, unsupported envs) stay rare.
MIN_COMPARED = 20

TASKS = all_tasks()

DB_DIALECTS = ["sqlite",
               pytest.param("duckdb",
                            marks=pytest.mark.skipif(
                                not HAVE_DUCKDB,
                                reason="duckdb not installed"))]

_ENGINE = RowEngine()


# ---------------------------------------------------------------- loader

class TestOracleLoader:
    def test_round_trip_preserves_rows_and_order(self):
        t = Table.from_rows("T", ["s", "n", "f", "b"], [
            ["O'Brien", 1, 2.5, True],
            [None, None, None, None],
            ['say "hi"', -7, 0.25, False],
        ])
        with Oracle(Env.of(t), "sqlite") as oracle:
            rows = oracle.execute(TableRef("T"))
        assert len(rows) == 3
        for expected, got in zip(t.rows, rows):
            for e, g in zip(expected, got):
                assert oracle_value_eq(e, g), (expected, got)

    def test_empty_table_loads(self):
        t = Table.from_rows("T", ["a", "b"], [])
        with Oracle(Env.of(t), "sqlite") as oracle:
            assert oracle.execute(TableRef("T")) == []

    def test_mixed_column_rejected(self):
        from repro.errors import OracleUnsupportedError

        t = Table.from_rows("T", ["a"], [[1], ["x"]])
        with pytest.raises(OracleUnsupportedError):
            Oracle(Env.of(t), "sqlite")

    def test_huge_int_rejected(self):
        from repro.errors import OracleUnsupportedError

        t = Table.from_rows("T", ["a"], [[2**64]])
        with pytest.raises(OracleUnsupportedError):
            Oracle(Env.of(t), "sqlite")

    def test_display_dialect_rejected(self):
        from repro.errors import OracleError

        t = Table.from_rows("T", ["a"], [[1]])
        with pytest.raises(OracleError):
            Oracle(Env.of(t), "display")

    def test_bool_int_affinity(self):
        assert oracle_value_eq(True, 1)
        assert oracle_value_eq(False, 0)
        assert not oracle_value_eq(True, 0)
        assert not oracle_value_eq(True, 2)
        assert oracle_value_eq(2, 2.0)
        assert not oracle_value_eq(None, 0)


# ------------------------------------------------------------- registry

@pytest.mark.parametrize("dialect", DB_DIALECTS)
@pytest.mark.parametrize("task", TASKS, ids=[t.name for t in TASKS])
def test_ground_truth_executes_and_matches(task, dialect):
    """Every registry ground truth parses, executes and matches."""
    outcome = check_query(task.ground_truth, task.env, dialect,
                          engine=_ENGINE)
    assert outcome.status == "ok", (
        outcome.skip_reason or outcome.mismatch.describe())


#: One budgeted row-backend search per task, shared across dialects
#: (deterministic, so recomputing per dialect would only double the wall
#: clock — the same reuse the cross-backend differential sweep does).
_RANKED: dict = {}


def _ranked_queries(task):
    if task.name not in _RANKED:
        config = task.config.replace(backend="row", timeout_s=None,
                                     max_visited=VISITED_BUDGET)
        result = Synthesizer("provenance", config).run(task.tables,
                                                       task.demonstration)
        _RANKED[task.name] = list(result.queries)[:RANKED_CAP]
    return _RANKED[task.name]


@pytest.mark.parametrize("dialect", DB_DIALECTS)
@pytest.mark.parametrize("task", TASKS, ids=[t.name for t in TASKS])
def test_ranked_queries_match_database(task, dialect):
    """Synthesized (not just ground-truth) plans survive the oracle."""
    queries = _ranked_queries(task)
    with Oracle(task.env, dialect) as oracle:
        for query in queries:
            outcome = check_query(query, task.env, dialect, oracle=oracle,
                                  engine=_ENGINE)
            assert outcome.status == "ok", (
                task.name, outcome.skip_reason
                or outcome.mismatch.describe())


# ----------------------------------------------------------------- fuzz

_FUZZ_BATCHES = [range(start, start + BATCH)
                 for start in range(0, N_FUZZ_CASES, BATCH)]


@pytest.mark.parametrize("dialect", DB_DIALECTS)
@pytest.mark.parametrize("seeds", _FUZZ_BATCHES,
                         ids=[f"{b[0]}-{b[-1]}" for b in _FUZZ_BATCHES])
def test_fuzz_plans_match_database(seeds, dialect):
    compared = 0
    for seed in seeds:
        env, query = sql_fuzz_case("sql-oracle-fuzz", seed)
        outcome = check_query(query, env, dialect, engine=_ENGINE)
        assert outcome.status != "mismatch", (
            seed, outcome.mismatch.describe())
        compared += outcome.compared
    assert compared >= MIN_COMPARED, (
        f"only {compared}/{len(seeds)} cases compared; the SQL fuzz "
        "profile is drifting outside the oracle's domain")


def test_fuzz_case_count_meets_acceptance_bar():
    assert N_FUZZ_CASES >= 300


# ---------------------------------------------------- engineered mismatch

class TestMismatchReporting:
    """Flip a dialect quirk off and the harness must catch + shrink it."""

    @pytest.fixture
    def buggy_dialect(self):
        # Plain SQL SUM is NULL over an all-NULL group where the engine's
        # sum says 0; coalesce_empty_sum papers over exactly that.
        return replace(DIALECTS["sqlite"], name="sqlite-nosumfix",
                       coalesce_empty_sum=False)

    @pytest.fixture
    def case(self):
        table = Table.from_rows("T", ["K", "X"], [
            ["a", 1], ["b", None], ["b", None], ["a", 2],
            ["c", 5], ["c", None]])
        env = Env.of(table)
        query = Sort(
            Filter(Group(TableRef("T"), keys=(0,), agg_func="sum",
                         agg_col=1),
                   ConstCmp(1, ">=", 0)),
            cols=(1,), ascending=True)
        return env, query

    def test_mismatch_detected(self, buggy_dialect, case):
        env, query = case
        outcome = check_query(query, env, buggy_dialect, engine=_ENGINE)
        assert outcome.status == "mismatch"
        report = outcome.mismatch.describe()
        assert "sqlite-nosumfix" in report
        assert "sql:" in report and "plan:" in report

    def test_mismatch_minimized(self, buggy_dialect, case):
        env, query = case
        outcome = check_query(query, env, buggy_dialect, engine=_ENGINE)
        small = minimize(outcome.mismatch, engine=_ENGINE)
        # The mismatch needs only a bare all-NULL sum over one row.
        assert operator_count(small.query) == 1
        assert sum(t.n_rows for t in small.env.tables) == 1
        assert "engine 0" in small.reason or "engine rows" in \
            small.describe()

    def test_correct_dialect_has_no_mismatch(self, case):
        env, query = case
        outcome = check_query(query, env, "sqlite", engine=_ENGINE)
        assert outcome.status == "ok"


# ------------------------------------------------------- order fidelity

@pytest.mark.parametrize("dialect", DB_DIALECTS)
def test_sorted_output_order_matches_engine(dialect):
    """Row *order* (not just content) survives execution — the satellite
    fix for Sort rendering: ordering threads to the outermost SELECT."""
    table = Table.from_rows("T", ["g", "x"], [
        ["a", 3], ["b", None], ["a", 1], ["b", 3], ["a", None], ["b", 2]])
    env = Env.of(table)
    for ascending in (True, False):
        query = Sort(TableRef("T"), cols=(1, 0), ascending=ascending)
        outcome = check_query(query, env, dialect, engine=_ENGINE)
        assert outcome.status == "ok", outcome.mismatch.describe()


@pytest.mark.parametrize("dialect", DB_DIALECTS)
def test_group_first_occurrence_order(dialect):
    table = Table.from_rows("T", ["g", "x"], [
        ["z", 1], ["a", 2], ["m", 3], ["a", 4], ["z", 5]])
    env = Env.of(table)
    query = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=1)
    outcome = check_query(query, env, dialect, engine=_ENGINE)
    assert outcome.status == "ok", outcome.mismatch.describe()
    rows = _ENGINE.evaluate(query, env).rows
    assert [r[0] for r in rows] == ["z", "a", "m"]


@pytest.mark.parametrize("dialect", DB_DIALECTS)
def test_cumsum_over_all_null_prefix(dialect):
    table = Table.from_rows("T", ["g", "x"], [
        ["a", None], ["a", None], ["a", 3], ["b", None]])
    env = Env.of(table)
    query = Partition(TableRef("T"), keys=(0,), agg_func="cumsum",
                      agg_col=1)
    outcome = check_query(query, env, dialect, engine=_ENGINE)
    assert outcome.status == "ok", outcome.mismatch.describe()

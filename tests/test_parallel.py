"""Unit tests for the sharded-search building blocks.

Covers the mergeable stats (`SearchStats.merge` / `EngineStats.merge`), the
shard planner (coverage, balance, determinism under permuted input), the
declarative stop specs, the parallel knob validation (including the shm
mode), and the dead-worker re-dispatch path of the process executor.
"""

import os
import random
from dataclasses import dataclass

import pytest

from repro.benchmarks import get_task
from repro.engine import EngineStats, make_engine, shm
from repro.parallel import ShardPlanner, estimated_lane_cost, resolve_shm
from repro.synthesis import (
    CallableStop,
    GroundTruthStop,
    SearchStats,
    StopSpec,
    SynthesisConfig,
    Synthesizer,
    as_stop_spec,
    construct_skeletons,
)


class TestSearchStatsMerge:
    def test_merge_empty_is_zero(self):
        assert SearchStats.merge() == SearchStats()

    def test_merge_single_is_identity(self):
        part = SearchStats(visited=7, pruned=3, expanded=2,
                           concrete_checked=2, consistent_found=1,
                           elapsed_s=0.5, timed_out=False, skeletons=4,
                           max_skeleton_size=3)
        assert SearchStats.merge(part) == part

    def test_merge_many_sums_counters(self):
        a = SearchStats(visited=10, pruned=4, expanded=3, concrete_checked=3,
                        consistent_found=2, skeletons=5)
        b = SearchStats(visited=20, pruned=6, expanded=8, concrete_checked=6,
                        consistent_found=1, skeletons=7)
        c = SearchStats(visited=1, concrete_checked=1)
        merged = SearchStats.merge(a, b, c)
        assert merged.visited == 31
        assert merged.pruned == 10
        assert merged.expanded == 11
        assert merged.concrete_checked == 10
        assert merged.consistent_found == 3
        assert merged.skeletons == 12

    def test_merge_takes_max_depth_and_elapsed(self):
        a = SearchStats(max_skeleton_size=2, elapsed_s=0.25)
        b = SearchStats(max_skeleton_size=3, elapsed_s=0.1)
        merged = SearchStats.merge(a, b)
        assert merged.max_skeleton_size == 3
        assert merged.elapsed_s == 0.25

    def test_merge_ors_timed_out(self):
        assert not SearchStats.merge(SearchStats(), SearchStats()).timed_out
        assert SearchStats.merge(SearchStats(),
                                 SearchStats(timed_out=True)).timed_out

    def test_merge_does_not_mutate_parts(self):
        part = SearchStats(visited=5)
        SearchStats.merge(part, part)
        assert part.visited == 5


class TestEngineStatsMerge:
    def test_merge_sums_counters(self):
        a = EngineStats(concrete_evals=10, concrete_hits=30,
                        tracking_evals=2, tracking_hits=6)
        b = EngineStats(concrete_evals=5, concrete_hits=5)
        merged = EngineStats.merge(a, b)
        assert merged.concrete_evals == 15
        assert merged.concrete_hits == 35
        assert merged.tracking_evals == 2
        assert merged.tracking_hits == 6

    def test_hit_rates(self):
        stats = EngineStats(concrete_evals=25, concrete_hits=75)
        assert stats.concrete_hit_rate == pytest.approx(0.75)
        assert EngineStats().concrete_hit_rate == 0.0
        assert EngineStats().tracking_hit_rate == 0.0


@pytest.fixture(scope="module")
def skeletons():
    task = get_task("fe01_total_sales_per_region")
    return construct_skeletons(task.env, task.config)


class TestShardPlanner:
    @pytest.mark.parametrize("strategy", ("cost_rr", "round_robin", "chunk"))
    def test_plan_partitions_every_lane_once(self, skeletons, strategy):
        plan = ShardPlanner(4, strategy).plan(skeletons)
        seen = [lane for shard in plan.shards for lane in shard]
        assert sorted(seen) == list(range(len(skeletons)))
        assert all(list(shard) == sorted(shard) for shard in plan.shards)

    def test_more_workers_than_lanes(self, skeletons):
        plan = ShardPlanner(10 * len(skeletons)).plan(skeletons)
        assert plan.n_shards == len(skeletons)
        assert all(len(shard) == 1 for shard in plan.shards)

    def test_empty_skeleton_list(self):
        plan = ShardPlanner(4).plan([])
        assert plan.n_shards == 0
        assert plan.n_lanes == 0

    def test_cost_rr_balances_estimated_cost(self, skeletons):
        plan = ShardPlanner(4, "cost_rr").plan(skeletons)
        # Descending-cost round-robin keeps the spread within the largest
        # single lane's cost.
        assert max(plan.costs) - min(plan.costs) <= \
            max(estimated_lane_cost(sk) for sk in skeletons)

    def test_cost_rr_membership_invariant_under_permutation(self, skeletons):
        planner = ShardPlanner(4, "cost_rr")
        baseline = planner.plan(skeletons).membership(skeletons)
        rng = random.Random(7)
        for _ in range(3):
            shuffled = list(skeletons)
            rng.shuffle(shuffled)
            assert planner.plan(shuffled).membership(shuffled) == baseline

    def test_plan_is_deterministic(self, skeletons):
        a = ShardPlanner(3, "cost_rr").plan(skeletons)
        b = ShardPlanner(3, "cost_rr").plan(skeletons)
        assert a == b

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ShardPlanner(0)
        with pytest.raises(ValueError):
            ShardPlanner(2, "by_vibes")


class TestStopSpecs:
    def test_ground_truth_stop_builds_engine_bound_predicate(self):
        task = get_task("fe01_total_sales_per_region")
        spec = GroundTruthStop(task.ground_truth)
        predicate = spec.build(make_engine("columnar"), task.env)
        assert predicate(task.ground_truth)

    def test_callable_stop_passes_through(self):
        marker = object()
        spec = CallableStop(lambda q: q is marker)
        predicate = spec.build(None, None)
        assert predicate(marker)

    def test_as_stop_spec_normalization(self):
        assert as_stop_spec(None) is None
        spec = CallableStop(lambda q: True)
        assert as_stop_spec(spec) is spec
        assert isinstance(as_stop_spec(lambda q: True), CallableStop)


class TestParallelConfig:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            SynthesisConfig(workers=0)

    def test_rejects_unknown_shard_strategy(self):
        with pytest.raises(ValueError):
            SynthesisConfig(shard_strategy="by_vibes")

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            SynthesisConfig(parallel_executor="gpu")

    def test_rejects_parallel_fifo_strategies(self):
        with pytest.raises(ValueError):
            SynthesisConfig(workers=2, strategy="bfs")

    def test_rejects_unknown_shm_mode(self):
        with pytest.raises(ValueError):
            SynthesisConfig(shm="maybe")

    def test_resolve_shm_modes(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        auto = SynthesisConfig(shm="auto")
        assert resolve_shm(auto, "process") is True
        assert resolve_shm(auto, "thread") is False
        assert resolve_shm(auto, "serial") is False
        assert resolve_shm(SynthesisConfig(shm="on"), "thread") is True
        assert resolve_shm(SynthesisConfig(shm="off"), "process") is False

    def test_resolve_shm_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "off")
        assert resolve_shm(SynthesisConfig(shm="on"), "process") is False
        monkeypatch.setenv("REPRO_SHM", "on")
        assert resolve_shm(SynthesisConfig(shm="off"), "serial") is True
        monkeypatch.setenv("REPRO_SHM", "auto")
        assert resolve_shm(SynthesisConfig(shm="off"), "process") is True

    def test_sharded_run_requires_named_abstraction(self):
        task = get_task("fe01_total_sales_per_region")
        from repro.abstraction.base import make_abstraction
        config = task.config.replace(workers=2, parallel_executor="serial",
                                     timeout_s=None, max_visited=50)
        synthesizer = Synthesizer(make_abstraction("none"), config)
        with pytest.raises(ValueError, match="by name"):
            synthesizer.run(task.tables, task.demonstration)

    def test_sharded_run_rejects_supplied_engine(self):
        task = get_task("fe01_total_sales_per_region")
        config = task.config.replace(workers=2, parallel_executor="serial",
                                     timeout_s=None, max_visited=50)
        synthesizer = Synthesizer("provenance", config,
                                  engine=make_engine("columnar"))
        with pytest.raises(ValueError, match="engine"):
            synthesizer.run(task.tables, task.demonstration)


class TestRunWideBudgets:
    def test_serial_executor_shares_one_wall_clock_budget(self):
        # An unsolvable-within-budget hard task: with per-shard deadlines
        # the 4 serially-executed shards would take ~4x the timeout.
        task = get_task("fh03_revenue_share_of_total")
        timeout = 0.4
        config = task.config.replace(workers=4, parallel_executor="serial",
                                     timeout_s=timeout)
        result = Synthesizer("provenance", config).run(
            task.tables, task.demonstration)
        assert result.stats.timed_out
        assert result.stats.elapsed_s < 4 * timeout

    def test_engine_stats_is_a_per_run_snapshot(self):
        task = get_task("fe01_total_sales_per_region")
        config = task.config.replace(timeout_s=None, max_visited=100)
        synthesizer = Synthesizer("provenance", config)
        first = synthesizer.run(task.tables, task.demonstration)
        recorded = first.engine_stats.as_dict()
        synthesizer.run(task.tables, task.demonstration)
        assert first.engine_stats.as_dict() == recorded


@dataclass(frozen=True)
class CrashingStop(StopSpec):
    """Kill the worker process at shard start-up, ``crashes`` times total.

    ``os._exit`` bypasses every ``except`` — the worker dies without
    reporting, exactly the OOM-kill/segfault shape the process executor's
    re-dispatch handles.  A flag file (one byte appended per crash)
    bounds the casualties so re-dispatched workers survive; pre-seeding
    the file lets the serial reference run build the spec harmlessly.
    """

    flag_path: str
    crashes: int = 1

    def build(self, engine, env):
        with open(self.flag_path, "a") as fh:
            fh.write("x")
        if os.path.getsize(self.flag_path) <= self.crashes:
            os._exit(42)
        return lambda query: False


class TestDeadWorkerRedispatch:
    def _run(self, task, stop, workers):
        config = task.config.replace(workers=workers,
                                     parallel_executor="process",
                                     timeout_s=None, max_visited=60)
        return Synthesizer("provenance", config).run(
            task.tables, task.demonstration, stop_predicate=stop)

    def test_crashed_worker_redispatched_once(self, tmp_path):
        task = get_task("fe01_total_sales_per_region")
        flag = str(tmp_path / "crashed")
        before = set(shm.scan_segments())
        survived = self._run(task, CrashingStop(flag, crashes=1), workers=2)
        # The re-dispatched shard completed: results match the serial
        # reference (whose spec build is a no-op — the flag is spent).
        reference = self._run(task, CrashingStop(flag, crashes=0), workers=1)
        assert survived.queries == reference.queries
        assert survived.stats.visited == reference.stats.visited
        # The dead worker's segments were reclaimed, nothing leaked.
        assert set(shm.scan_segments()) == before

    def test_twice_dead_worker_raises_instead_of_hanging(self, tmp_path):
        task = get_task("fe01_total_sales_per_region")
        flag = str(tmp_path / "crashed")
        before = set(shm.scan_segments())
        # Enough crashes that some shard dies on its re-dispatch too.
        with pytest.raises(RuntimeError, match="died"):
            self._run(task, CrashingStop(flag, crashes=8), workers=2)
        assert set(shm.scan_segments()) == before

"""Differential sharded-search tests (mirrors ``test_engine_differential``).

The ``workers`` knob must trade wall-clock only — never results.  Every
task in the benchmark registry runs serial (``workers=1``) and sharded
(``workers=4``); ranked queries and every deterministic search counter
must match exactly, whatever executor, worker count or shard strategy
produced the traces.

Searches run under a visited-query budget (no wall clock) so serial and
sharded runs traverse identical search prefixes regardless of machine
speed — the same discipline the engine differential suite uses.

Shared-memory dispatch (``repro.engine.shm``) is part of the pledge: the
process legs here run with it by default (``shm="auto"``), explicit
``shm="on"``/``"off"`` legs pin both paths, a fork-vs-spawn leg proves the
handles survive a cold process boundary, and a session fixture fails the
suite if any run leaked a ``/dev/shm`` segment.
"""

import multiprocessing

import pytest

from repro.benchmarks import all_tasks
from repro.engine import shm
from repro.synthesis import GroundTruthStop, Synthesizer


@pytest.fixture(scope="session", autouse=True)
def no_leaked_shm_segments():
    """Every segment any run in this module creates must be gone by the
    end of the session — whatever executor, start method or crash path
    produced it."""
    before = set(shm.scan_segments())
    yield
    leaked = sorted(set(shm.scan_segments()) - before)
    assert not leaked, f"leaked shared-memory segments: {leaked}"

#: Mirrors the engine differential budget: enough to cross several
#: skeletons on every task while keeping the sweep in tens of seconds.
VISITED_BUDGET = 400

TASKS = all_tasks()

#: Subset exercising the process executor (fork/queue round-trips are
#: slower than threads, so the full 80-task sweep uses threads).
PROCESS_TASKS = [t for t in TASKS if t.name in (
    "fe01_total_sales_per_region",
    "fe10_salary_rank_within_dept",
    "fe20_share_of_region_total",
    "fh02_region_quarter_share",
    "fh06_weekly_weight_deviation",
    "td01_item_cumulative_monthly_sales",
)]

#: Stop-predicate (experiment-mode) subset: first-consistent-query
#: cancellation must propagate across shards without changing the result.
STOP_TASKS = [t for t in TASKS if t.name in (
    "fe01_total_sales_per_region",
    "fe05_min_price_per_category",
    "fe09_cumulative_units_per_product",
    "fe17_line_revenue",
    "fh02_region_quarter_share",
    "td07_state_profit_share",
)]

#: Stats that must be byte-identical between serial and sharded runs
#: (elapsed_s is wall clock and legitimately differs).
DETERMINISTIC_FIELDS = ("visited", "pruned", "expanded", "concrete_checked",
                        "consistent_found", "timed_out", "skeletons",
                        "max_skeleton_size")


def _run(task, workers, executor="thread", stop=None, budget=VISITED_BUDGET,
         strategy="cost_rr", shm_mode=None):
    overrides = dict(
        workers=workers, parallel_executor=executor,
        shard_strategy=strategy, timeout_s=None, max_visited=budget)
    if shm_mode is not None:
        overrides["shm"] = shm_mode
    config = task.config.replace(**overrides)
    synthesizer = Synthesizer("provenance", config)
    return synthesizer.run(task.tables, task.demonstration,
                           stop_predicate=stop)


def _assert_identical(serial, sharded):
    assert sharded.queries == serial.queries
    for field in DETERMINISTIC_FIELDS:
        assert getattr(sharded.stats, field) == \
            getattr(serial.stats, field), field
    assert sharded.target == serial.target
    assert sharded.target_rank == serial.target_rank


@pytest.mark.parametrize("task", TASKS, ids=[t.name for t in TASKS])
def test_sharded_search_identical_to_serial(task):
    serial = _run(task, workers=1)
    sharded = _run(task, workers=4)
    _assert_identical(serial, sharded)
    # The telemetry views exist and are coherent: shards collectively do at
    # least the serial run's work, through their own engines.
    assert sharded.workers == 4
    assert sharded.raw_stats.visited >= serial.stats.visited
    assert sharded.raw_stats.skeletons == serial.stats.skeletons
    assert sharded.engine_stats is not None


@pytest.mark.parametrize("task", PROCESS_TASKS,
                         ids=[t.name for t in PROCESS_TASKS])
def test_process_workers_identical_to_serial(task):
    serial = _run(task, workers=1)
    sharded = _run(task, workers=4, executor="process")
    _assert_identical(serial, sharded)


@pytest.mark.parametrize("task", PROCESS_TASKS,
                         ids=[t.name for t in PROCESS_TASKS])
def test_numpy_backend_sharded_identical_to_columnar_serial(task):
    """The backend and workers knobs compose: a numpy workers=4 run is
    byte-identical to the columnar serial reference (per-worker engines
    are rebuilt from ``config.backend`` inside each shard).  Without
    NumPy this still passes — backend="numpy" falls back to columnar —
    which is exactly the fallback contract under test.
    """
    from repro.engine import HAVE_NUMPY, NumpyEngine, make_engine

    if HAVE_NUMPY:
        assert isinstance(make_engine("numpy"), NumpyEngine)
    serial = _run(task, workers=1)

    def _numpy_run(workers, executor):
        config = task.config.replace(
            backend="numpy", workers=workers, parallel_executor=executor,
            timeout_s=None, max_visited=VISITED_BUDGET)
        return Synthesizer("provenance", config).run(task.tables,
                                                     task.demonstration)

    _assert_identical(serial, _numpy_run(1, "thread"))
    _assert_identical(serial, _numpy_run(4, "thread"))
    _assert_identical(serial, _numpy_run(4, "process"))


@pytest.mark.parametrize("task", STOP_TASKS,
                         ids=[t.name for t in STOP_TASKS])
def test_stop_predicate_cancellation_identical(task):
    stop = GroundTruthStop(task.ground_truth)
    serial = _run(task, workers=1, stop=stop, budget=2000)
    for executor in ("serial", "thread", "process"):
        sharded = _run(task, workers=4, executor=executor, stop=stop,
                       budget=2000)
        _assert_identical(serial, sharded)


def test_result_invariant_across_worker_counts_and_strategies():
    task = PROCESS_TASKS[0]
    serial = _run(task, workers=1)
    for workers in (2, 3, 7):
        _assert_identical(serial, _run(task, workers=workers))
    for strategy in ("cost_rr", "round_robin", "chunk"):
        _assert_identical(serial, _run(task, workers=4, strategy=strategy))


def test_sharded_respects_visited_budget():
    task = PROCESS_TASKS[0]
    serial = _run(task, workers=1, budget=60)
    sharded = _run(task, workers=4, budget=60)
    _assert_identical(serial, sharded)
    assert sharded.stats.visited <= 60
    assert sharded.stats.timed_out == serial.stats.timed_out


@pytest.mark.parametrize("task", PROCESS_TASKS[:3],
                         ids=[t.name for t in PROCESS_TASKS[:3]])
def test_shm_on_identical_across_executors(task, monkeypatch):
    """``shm="on"`` forces handle dispatch (process) and the in-process
    sub-plan cache (thread/serial); none may perturb any result, at
    either worker count of the acceptance matrix."""
    monkeypatch.delenv("REPRO_SHM", raising=False)
    serial = _run(task, workers=1)
    for executor in ("serial", "thread", "process"):
        for workers in (2, 4):
            _assert_identical(serial, _run(task, workers=workers,
                                           executor=executor, shm_mode="on"))


def test_shm_off_pickled_dispatch_still_identical(monkeypatch):
    """The pre-shm pickled-table path remains a correct fallback."""
    monkeypatch.delenv("REPRO_SHM", raising=False)
    task = PROCESS_TASKS[0]
    serial = _run(task, workers=1)
    off = _run(task, workers=4, executor="process", shm_mode="off")
    _assert_identical(serial, off)
    assert off.engine_stats.shm_segments == 0
    assert off.engine_stats.shm_bytes_shipped == 0


def test_shm_telemetry_counts_dispatch_traffic(monkeypatch):
    monkeypatch.delenv("REPRO_SHM", raising=False)
    task = PROCESS_TASKS[0]
    sharded = _run(task, workers=4, executor="process", shm_mode="on")
    # At least the coordinator's env segment was laid out and shipped.
    assert sharded.engine_stats.shm_segments >= 1
    assert sharded.engine_stats.shm_bytes_shipped > 0


def test_fork_vs_spawn_parity(monkeypatch):
    """The same shm-dispatched run is byte-identical under both start
    methods: fork (handles inherited) and spawn (handles pickled into a
    cold interpreter)."""
    task = PROCESS_TASKS[0]
    serial = _run(task, workers=1)
    available = multiprocessing.get_all_start_methods()
    for method in ("fork", "spawn"):
        if method not in available:
            continue
        monkeypatch.setenv("REPRO_START_METHOD", method)
        _assert_identical(serial, _run(task, workers=2, executor="process",
                                       shm_mode="on"))

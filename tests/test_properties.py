"""Property-based tests (hypothesis) for the core invariants.

The generators build random small tables and random *valid* queries by
drawing each hole's value from the synthesizer's own domain inference —
so every sampled query is one the search could actually visit.

Invariants under test:

* shadow agreement — evaluating a tracked table's expressions reproduces
  the concrete output cell by cell (``[[ [[q]]★ ]] = [[q]]``, §3.1);
* demo-generation soundness — a §5.1-generated demonstration is always
  provenance-consistent with its ground truth (Definition 1);
* pruning soundness (Property 2) — no partialization of the ground truth
  is ever pruned by the abstract consistency check on its demonstration;
* simplification idempotence and bag-equality sanity.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.abstraction import ProvenanceAbstraction, abstract_eval
from repro.lang import Env, Group, Partition, TableRef
from repro.lang.holes import fill, first_hole, holes_of, is_concrete
from repro.provenance import demo_consistent
from repro.provenance.refs import refs_of
from repro.provenance.simplify import simplify
from repro.semantics import evaluate, evaluate_tracking
from repro.spec import DemoGenConfig, generate_demonstration
from repro.synthesis import SynthesisConfig, construct_skeletons
from repro.synthesis.domains import hole_domain
from repro.table import Table
from repro.table.values import value_eq

# ----------------------------------------------------------------- strategies

KEYS = ("a", "b", "c")


@st.composite
def tables(draw) -> Table:
    n_rows = draw(st.integers(min_value=2, max_value=7))
    rows = []
    for i in range(n_rows):
        rows.append([
            draw(st.sampled_from(KEYS)),
            draw(st.integers(min_value=1, max_value=4)),
            draw(st.integers(min_value=-20, max_value=100)),
        ])
    return Table.from_rows("T", ["k", "g", "v"], rows)


@st.composite
def concrete_queries(draw, table: Table):
    """A random concrete query built by filling a random skeleton's holes
    from the synthesizer's domain inference."""
    env = Env.of(table)
    config = SynthesisConfig(max_operators=draw(
        st.integers(min_value=1, max_value=2)))
    skeletons = construct_skeletons(env, config)
    query = draw(st.sampled_from(skeletons))
    for _ in range(16):
        position = first_hole(query)
        if position is None:
            break
        domain = hole_domain(query, position, env, config)
        assume(domain)
        query = fill(query, position, draw(st.sampled_from(domain)))
    assume(is_concrete(query))
    return query


@st.composite
def table_query_pairs(draw):
    table = draw(tables())
    query = draw(concrete_queries(table))
    return table, query


# ------------------------------------------------------------------ properties

@settings(max_examples=60, deadline=None)
@given(table_query_pairs())
def test_tracking_shadow_agrees_with_concrete(pair):
    """[[ [[q]]★ ]] == [[q]] cell-by-cell."""
    table, query = pair
    env = Env.of(table)
    tracked = evaluate_tracking(query, env)
    concrete = evaluate(query, env)
    assert tracked.n_rows == concrete.n_rows
    assert tracked.n_cols == concrete.n_cols
    for i in range(tracked.n_rows):
        for j in range(tracked.n_cols):
            assert value_eq(tracked.values[i][j], concrete.cell(i, j))
            assert value_eq(tracked.exprs[i][j].evaluate(env),
                            concrete.cell(i, j))


@settings(max_examples=60, deadline=None)
@given(table_query_pairs(), st.integers(min_value=0, max_value=5))
def test_generated_demo_is_consistent(pair, seed):
    """§5.1 demonstrations satisfy Definition 1 against their ground truth."""
    table, query = pair
    env = Env.of(table)
    assume(evaluate(query, env).n_rows >= 1)
    demo = generate_demonstration(query, env, DemoGenConfig(seed=seed),
                                  label="prop")
    tracked = evaluate_tracking(query, env)
    assert demo_consistent(tracked.exprs, demo.cells)


@settings(max_examples=40, deadline=None)
@given(table_query_pairs(), st.integers(min_value=0, max_value=3),
       st.data())
def test_ground_truth_path_never_pruned(pair, seed, data):
    """Property 2 (contrapositive): partializations of q_gt stay feasible.

    Take the ground truth, punch a random suffix of its parameters back to
    holes (post-order, as the search instantiates them), and require the
    abstract analysis to keep every such partial query.
    """
    table, query = pair
    env = Env.of(table)
    assume(evaluate(query, env).n_rows >= 1)
    demo = generate_demonstration(query, env, DemoGenConfig(seed=seed),
                                  label="prop2")

    # Rebuild the instantiation path: skeletonize then refill in post-order.
    skeleton = _skeletonize(query)
    values = _parameter_values(query)
    prefix_len = data.draw(st.integers(min_value=0, max_value=len(values)))
    partial = skeleton
    for value in values[:prefix_len]:
        partial = fill(partial, first_hole(partial), value)

    if is_concrete(partial):
        tracked = evaluate_tracking(partial, env)
        assert demo_consistent(tracked.exprs, demo.cells)
    else:
        assert ProvenanceAbstraction().feasible(partial, env, demo)


@settings(max_examples=60, deadline=None)
@given(table_query_pairs())
def test_abstract_refs_cover_tracked_refs(pair):
    """Property 1 on the fully-partial skeleton: every tracked cell's refs
    are contained in some abstract cell of the skeleton's abstract table."""
    table, query = pair
    env = Env.of(table)
    tracked = evaluate_tracking(query, env)
    abs_table = abstract_eval(_skeletonize(query), env)
    assume(tracked.n_rows >= 1)
    all_abs_refs = abs_table.all_refs()
    for row in tracked.exprs:
        for expr in row:
            assert refs_of(expr) <= all_abs_refs


@settings(max_examples=80, deadline=None)
@given(table_query_pairs())
def test_simplify_idempotent_on_tracked_cells(pair):
    table, query = pair
    env = Env.of(table)
    tracked = evaluate_tracking(query, env)
    for row in tracked.exprs:
        for expr in row:
            once = simplify(expr)
            assert simplify(once) == once


@settings(max_examples=60, deadline=None)
@given(tables())
def test_bag_equality_invariants(table):
    assert table.same_rows(table)
    reversed_rows = table.take_rows(list(range(table.n_rows))[::-1])
    assert table.same_rows(reversed_rows)
    assert reversed_rows.same_rows(table)


@settings(max_examples=60, deadline=None)
@given(tables(), st.integers(min_value=0, max_value=2))
def test_group_row_count_is_distinct_keys(table, key_col):
    env = Env.of(table)
    q = Group(TableRef("T"), keys=(key_col,), agg_func="count", agg_col=2)
    out = evaluate(q, env)
    distinct = {repr(v) for v in table.column_values(key_col)}
    assert out.n_rows == len(distinct)


@settings(max_examples=60, deadline=None)
@given(tables())
def test_partition_preserves_rows(table):
    env = Env.of(table)
    q = Partition(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
    out = evaluate(q, env)
    assert out.n_rows == table.n_rows
    assert out.n_cols == table.n_cols + 1
    # existing columns are untouched
    for i in range(table.n_rows):
        assert out.rows[i][:3] == table.rows[i]


# -------------------------------------------------------------------- helpers

def _skeletonize(query):
    """Replace every parameter with a hole (the query's skeleton)."""
    from repro.lang.holes import Hole

    def strip(node):
        children = tuple(strip(c) for c in node.child_queries())
        node = node.with_children(children) if children else node
        filled = {f: Hole(f) for f in node.param_fields()}
        return node.with_params(**filled) if filled else node

    return strip(query)


def _parameter_values(query) -> list:
    """Parameter values of a concrete query in post-order hole order."""
    skeleton = _skeletonize(query)
    values = []
    for path, field in holes_of(skeleton):
        node = query
        for i in path:
            node = node.child_queries()[i]
        values.append(getattr(node, field))
    return values

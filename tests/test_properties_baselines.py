"""Property-based soundness of the *baseline* abstractions.

Type and value abstraction must also never prune the ground-truth path —
they are weaker than provenance abstraction but still sound (§5.1 evaluates
them in the same framework, so an unsound baseline would invalidate the
comparison).  Also: provenance pruning implies baseline-visible pruning
never contradicts it on the ground-truth path.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.abstraction import TypeAbstraction, ValueAbstraction
from repro.lang import Env
from repro.lang.holes import fill, first_hole, is_concrete
from repro.semantics import evaluate
from repro.spec import DemoGenConfig, generate_demonstration
from tests.test_properties import (
    _parameter_values,
    _skeletonize,
    table_query_pairs,
)


@settings(max_examples=40, deadline=None)
@given(table_query_pairs(), st.integers(min_value=0, max_value=3),
       st.data())
def test_type_abstraction_never_prunes_ground_truth(pair, seed, data):
    table, query = pair
    env = Env.of(table)
    assume(evaluate(query, env).n_rows >= 1)
    demo = generate_demonstration(query, env, DemoGenConfig(seed=seed),
                                  label="prop-type")
    partial = _random_partialization(query, data)
    if not is_concrete(partial):
        assert TypeAbstraction().feasible(partial, env, demo)


@settings(max_examples=40, deadline=None)
@given(table_query_pairs(), st.integers(min_value=0, max_value=3),
       st.data())
def test_value_abstraction_never_prunes_ground_truth(pair, seed, data):
    table, query = pair
    env = Env.of(table)
    assume(evaluate(query, env).n_rows >= 1)
    demo = generate_demonstration(query, env, DemoGenConfig(seed=seed),
                                  label="prop-value")
    partial = _random_partialization(query, data)
    if not is_concrete(partial):
        assert ValueAbstraction().feasible(partial, env, demo)


def _random_partialization(query, data):
    from hypothesis import strategies as st
    skeleton = _skeletonize(query)
    values = _parameter_values(query)
    prefix_len = data.draw(st.integers(min_value=0, max_value=len(values)))
    partial = skeleton
    for value in values[:prefix_len]:
        partial = fill(partial, first_hole(partial), value)
    return partial

"""The ≺ judgment (Fig. 10) and table-level consistency (Definition 1)."""

from repro.provenance import (
    cell,
    const,
    demo_consistent,
    func,
    generalizes,
    group,
    partial_func,
)

A, B, C, D, E5 = (cell("T", i, 0) for i in range(5))


class TestLeafRules:
    def test_const_matches_const(self):
        assert generalizes(const(5), const(5))
        assert not generalizes(const(5), const(6))

    def test_const_float_tolerance(self):
        assert generalizes(const(2.0), const(2))

    def test_cellref_identity(self):
        assert generalizes(A, A)
        assert not generalizes(A, B)

    def test_ref_does_not_match_const(self):
        assert not generalizes(A, const(1))
        assert not generalizes(const(1), A)


class TestGroupRule:
    def test_any_member_witnesses(self):
        g = group([A, B])
        assert generalizes(g, A)
        assert generalizes(g, B)
        assert not generalizes(g, C)

    def test_nested_member_expression(self):
        g = group([func("sum", A, B)])
        assert generalizes(g, func("sum", A, B))

    def test_demo_cannot_be_group(self):
        # groups only appear on the tracked side
        assert not generalizes(A, group([A]))


class TestCommutativeMatching:
    def test_complete_requires_bijection(self):
        tracked = func("sum", A, B, C)
        assert generalizes(tracked, func("sum", C, A, B))  # any order
        assert not generalizes(tracked, func("sum", A, B))  # missing arg

    def test_partial_allows_subset(self):
        tracked = func("sum", A, B, C, D)
        assert generalizes(tracked, partial_func("sum", D, B))
        assert generalizes(tracked, partial_func("sum", A))

    def test_partial_rejects_foreign_values(self):
        tracked = func("sum", A, B)
        assert not generalizes(tracked, partial_func("sum", A, C))

    def test_partial_args_must_map_injectively(self):
        tracked = func("sum", A, B)
        assert not generalizes(tracked, partial_func("sum", A, A, A))


class TestPositionalMatching:
    def test_complete_positional(self):
        tracked = func("div", A, B)
        assert generalizes(tracked, func("div", A, B))
        assert not generalizes(tracked, func("div", B, A))

    def test_partial_positional_is_subsequence(self):
        tracked = func("percent", func("sum", A, B, C, D), E5)
        # omissions in the middle of the sum (the paper's Fig. 3)
        demo = func("percent", partial_func("sum", A, D), E5)
        assert generalizes(tracked, demo)

    def test_partial_subsequence_rejects_reordering(self):
        tracked = func("div", A, B)
        assert not generalizes(tracked, partial_func("div", B, A))


class TestRankedMatching:
    def test_first_argument_positional(self):
        tracked = func("rank", A, A, B, C)
        assert generalizes(tracked, partial_func("rank", A, C))
        assert not generalizes(tracked, partial_func("rank", B, A))

    def test_complete_rank_needs_whole_pool(self):
        tracked = func("rank", A, A, B)
        assert generalizes(tracked, func("rank", A, B, A))
        assert not generalizes(tracked, func("rank", A, A))


class TestNestedStructures:
    def test_function_name_must_match(self):
        assert not generalizes(func("sum", A, B), func("avg", A, B))

    def test_flattening_applied_before_matching(self):
        tracked = func("sum", func("sum", A, B), C)
        assert generalizes(tracked, func("sum", A, B, C))

    def test_group_inside_application(self):
        tracked = func("percent", func("sum", A, B), group([C, D]))
        assert generalizes(tracked, func("percent", func("sum", A, B), C))
        assert generalizes(tracked, func("percent", func("sum", A, B), D))


class TestTableLevel:
    def test_paper_running_example(self, health_env, ground_truth,
                                    paper_demo):
        from repro.semantics import evaluate_tracking
        tracked = evaluate_tracking(ground_truth, health_env)
        assert demo_consistent(tracked.exprs, paper_demo.cells)

    def test_row_mapping_injective(self):
        # two identical demo rows need two matching tracked rows
        tracked = [[A]]
        demo = [[A], [A]]
        assert not demo_consistent(tracked, demo)

    def test_column_mapping_injective(self):
        tracked = [[A, B]]
        demo = [[A, A]]
        assert not demo_consistent(tracked, demo)

    def test_column_subset_allowed(self):
        tracked = [[A, B, C], [B, C, D]]
        demo = [[C], [D]]
        assert demo_consistent(tracked, demo)

    def test_column_order_free(self):
        tracked = [[A, B], [C, D]]
        demo = [[B, A], [D, C]]
        assert demo_consistent(tracked, demo)

    def test_inconsistent_cell_rejects(self):
        tracked = [[A, B], [C, D]]
        demo = [[A, E5]]
        assert not demo_consistent(tracked, demo)

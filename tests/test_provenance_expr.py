"""Provenance / demonstration expression terms."""

import pytest

from repro.errors import ExpressionError
from repro.lang import Env
from repro.provenance import cell, const, func, group, partial_func
from repro.provenance.expr import CellRef, Const, FuncApp, GroupSet
from repro.table import Table


@pytest.fixture
def env():
    t = Table.from_rows("T", ["a", "b"], [[1, 10], [2, 20], [3, 30]])
    return Env.of(t)


class TestConstruction:
    def test_const_lifting(self):
        e = func("sum", 1, 2)
        assert all(isinstance(a, Const) for a in e.args)

    def test_cell_is_zero_based(self):
        assert cell("T", 0, 1) == CellRef("T", 0, 1)

    def test_repr_is_one_based_like_the_paper(self):
        assert repr(cell("T", 0, 0)) == "T[1,1]"

    def test_partial_marker_in_repr(self):
        assert "♦" in repr(partial_func("sum", 1, 2))

    def test_unknown_function_rejected(self):
        with pytest.raises(ExpressionError):
            func("frobnicate", 1)

    def test_empty_application_rejected(self):
        with pytest.raises(ExpressionError):
            FuncApp("sum", ())

    def test_empty_group_rejected(self):
        with pytest.raises(ExpressionError):
            GroupSet(())


class TestEvaluation:
    def test_const(self, env):
        assert const(7).evaluate(env) == 7

    def test_cell_ref(self, env):
        assert cell("T", 1, 1).evaluate(env) == 20

    def test_nested_application(self, env):
        e = func("div", func("sum", cell("T", 0, 1), cell("T", 1, 1)),
                 const(3))
        assert e.evaluate(env) == 10

    def test_group_evaluates_first_member(self, env):
        e = group([cell("T", 0, 0), cell("T", 1, 0)])
        assert e.evaluate(env) == 1

    def test_partial_cannot_evaluate(self, env):
        with pytest.raises(ExpressionError):
            partial_func("sum", cell("T", 0, 0)).evaluate(env)

    def test_unknown_table_raises(self, env):
        from repro.errors import EvaluationError
        with pytest.raises(EvaluationError):
            cell("X", 0, 0).evaluate(env)


class TestHashing:
    def test_structural_equality(self):
        assert func("sum", 1, 2) == func("sum", 1, 2)
        assert func("sum", 1, 2) != partial_func("sum", 1, 2)

    def test_usable_in_sets(self):
        s = {cell("T", 0, 0), cell("T", 0, 0), cell("T", 0, 1)}
        assert len(s) == 2

"""Term simplification: sum/max/min flattening and group flattening (§3.1)."""

from repro.provenance import cell, func, group, partial_func, simplify
from repro.provenance.expr import FuncApp

A, B, C, D = (cell("T", i, 0) for i in range(4))


class TestFlattening:
    def test_sum_of_sum_flattens(self):
        e = func("sum", func("sum", A, B), C)
        assert simplify(e) == func("sum", A, B, C)

    def test_paper_example_f_f_ab_c(self):
        # f(f(a,b),c) -> f(a,b,c) for f in {sum, max, min}
        for name in ("sum", "max", "min"):
            e = func(name, func(name, A, B), C)
            assert simplify(e) == func(name, A, B, C)

    def test_deep_nesting_flattens_fully(self):
        e = func("sum", func("sum", func("sum", A, B), C), D)
        assert simplify(e) == func("sum", A, B, C, D)

    def test_avg_does_not_flatten(self):
        e = func("avg", func("avg", A, B), C)
        simplified = simplify(e)
        assert isinstance(simplified.args[0], FuncApp)

    def test_count_does_not_flatten(self):
        e = func("count", func("count", A, B), C)
        assert isinstance(simplify(e).args[0], FuncApp)

    def test_mixed_functions_do_not_flatten(self):
        e = func("sum", func("max", A, B), C)
        assert isinstance(simplify(e).args[0], FuncApp)

    def test_partial_flag_propagates_from_inner(self):
        e = func("sum", partial_func("sum", A, B), C)
        assert simplify(e).partial

    def test_arguments_simplified_recursively(self):
        e = func("div", func("sum", func("sum", A, B), C), D)
        assert simplify(e).args[0] == func("sum", A, B, C)


class TestGroupFlattening:
    def test_nested_groups_flatten(self):
        e = group([group([A, B]), C])
        assert simplify(e) == group([A, B, C])

    def test_duplicate_members_dedup(self):
        e = group([A, A, B])
        assert simplify(e) == group([A, B])

    def test_group_inside_function_untouched(self):
        e = func("div", A, group([B, C]))
        assert simplify(e).args[1] == group([B, C])


class TestIdempotence:
    def test_simplify_twice_is_same(self):
        e = func("sum", func("sum", A, group([group([B]), C])), D)
        once = simplify(e)
        assert simplify(once) == once

    def test_leaves_unchanged(self):
        assert simplify(A) is A

"""Concrete evaluation of every operator."""

import pytest

from repro.errors import HoleError
from repro.lang import (
    Arithmetic,
    Env,
    Filter,
    Group,
    Hole,
    Join,
    LeftJoin,
    Partition,
    Proj,
    Sort,
    TableRef,
)
from repro.lang.predicates import ColCmp, ConstCmp
from repro.semantics import evaluate
from repro.table import Table


@pytest.fixture
def env(tiny_table):
    return Env.of(tiny_table)


class TestBaseAndRowOps:
    def test_table_ref(self, env, tiny_table):
        out = evaluate(TableRef("T"), env)
        assert out.same_rows(tiny_table)

    def test_filter(self, env):
        out = evaluate(Filter(TableRef("T"), ConstCmp(2, ">", 15)), env)
        assert out.n_rows == 2

    def test_filter_col_cmp(self, env):
        out = evaluate(Filter(TableRef("T"), ColCmp(1, "<", 2)), env)
        assert all(row[1] < row[2] for row in out.rows)

    def test_proj(self, env):
        out = evaluate(Proj(TableRef("T"), cols=(2, 0)), env)
        assert out.columns == ("Sales", "ID")

    def test_sort_ascending(self, env):
        out = evaluate(Sort(TableRef("T"), cols=(2,), ascending=True), env)
        values = [row[2] for row in out.rows]
        assert values == sorted(values)

    def test_sort_descending(self, env):
        out = evaluate(Sort(TableRef("T"), cols=(2,), ascending=False), env)
        values = [row[2] for row in out.rows]
        assert values == sorted(values, reverse=True)

    def test_sort_is_stable(self, env):
        out = evaluate(Sort(TableRef("T"), cols=(1,), ascending=True), env)
        q1 = [row[0] for row in out.rows if row[1] == 1]
        assert q1 == ["A", "B"]  # original relative order preserved

    def test_partial_query_raises(self, env):
        with pytest.raises(HoleError):
            evaluate(Filter(TableRef("T"), Hole("pred")), env)


class TestJoins:
    @pytest.fixture
    def env2(self, tiny_table):
        names = Table.from_rows("N", ["ID", "Label"],
                                [["A", "alpha"], ["B", "beta"]])
        return Env.of(tiny_table, names)

    def test_cross_join(self, env2):
        out = evaluate(Join(TableRef("T"), TableRef("N")), env2)
        assert out.n_rows == 10
        assert out.n_cols == 5

    def test_equi_join(self, env2):
        out = evaluate(Join(TableRef("T"), TableRef("N"),
                            pred=ColCmp(0, "==", 3)), env2)
        assert out.n_rows == 5
        assert all(row[0] == row[3] for row in out.rows)

    def test_left_join_pads_with_null(self, tiny_table):
        names = Table.from_rows("N", ["ID", "Label"], [["A", "alpha"]])
        env = Env.of(tiny_table, names)
        out = evaluate(LeftJoin(TableRef("T"), TableRef("N"),
                                pred=ColCmp(0, "==", 3)), env)
        assert out.n_rows == 5
        b_rows = [row for row in out.rows if row[0] == "B"]
        assert all(row[3] is None and row[4] is None for row in b_rows)


class TestGroup:
    def test_intro_example_q1(self, env):
        # Select ID, Sum(Sales) From T Group By ID  (paper §1)
        out = evaluate(Group(TableRef("T"), keys=(0,), agg_func="sum",
                             agg_col=2), env)
        assert out.same_rows(Table.from_rows("x", ["a", "b"],
                                             [["A", 45], ["B", 35]]))

    def test_group_by_two_keys(self, env):
        out = evaluate(Group(TableRef("T"), keys=(0, 1), agg_func="count",
                             agg_col=2), env)
        assert out.n_rows == 5

    def test_global_group(self, env):
        out = evaluate(Group(TableRef("T"), keys=(), agg_func="sum",
                             agg_col=2), env)
        assert out.n_rows == 1
        assert out.cell(0, 0) == 80

    def test_group_column_naming(self, env):
        out = evaluate(Group(TableRef("T"), keys=(0,), agg_func="sum",
                             agg_col=2, alias="Total"), env)
        assert out.columns == ("ID", "Total")


class TestPartition:
    def test_intro_example_q2_cumsum(self, env):
        # CumSum(Sales) Over (Partition By ID)  (paper §1, table T2)
        out = evaluate(Partition(TableRef("T"), keys=(0,),
                                 agg_func="cumsum", agg_col=2), env)
        assert [row[3] for row in out.rows] == [10, 30, 45, 20, 35]

    def test_partition_sum_sees_group_total(self, env):
        out = evaluate(Partition(TableRef("T"), keys=(0,), agg_func="sum",
                                 agg_col=2), env)
        assert [row[3] for row in out.rows] == [45, 45, 45, 35, 35]

    def test_partition_rank(self, env):
        out = evaluate(Partition(TableRef("T"), keys=(0,),
                                 agg_func="rank_desc", agg_col=2), env)
        # A sales: 10,20,15 -> ranks 3,1,2 ; B: 20,15 -> 1,2
        assert [row[3] for row in out.rows] == [3, 1, 2, 1, 2]

    def test_empty_keys_whole_table_window(self, env):
        out = evaluate(Partition(TableRef("T"), keys=(), agg_func="max",
                                 agg_col=2), env)
        assert all(row[3] == 20 for row in out.rows)


class TestArithmetic:
    def test_appends_column(self, env):
        out = evaluate(Arithmetic(TableRef("T"), func="mul", cols=(1, 2)),
                       env)
        assert out.n_cols == 4
        assert out.cell(0, 3) == 10

    def test_division_by_zero_gives_null(self, tiny_table):
        t = Table.from_rows("Z", ["a", "b"], [[1, 0]])
        out = evaluate(Arithmetic(TableRef("Z"), func="div", cols=(0, 1)),
                       Env.of(t))
        assert out.cell(0, 2) is None


class TestPipelines:
    def test_running_example_full_pipeline(self, health_env, ground_truth):
        out = evaluate(ground_truth, health_env)
        assert out.n_cols == 3
        assert out.n_rows == 8
        # city A, Q1: (1667+1367)/5668 * 100 = 53.53...
        assert out.cell(0, 2) == pytest.approx(53.53, abs=0.01)
        # city A, Q4: 5010/5668 * 100 = 88.39...
        assert out.cell(3, 2) == pytest.approx(88.39, abs=0.01)

    def test_memoization_returns_consistent_results(self, env):
        q = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        # No module-global state: independent calls compute equal tables.
        assert evaluate(q, env) == evaluate(q, env)
        # Memoization is cache-scoped: a shared cache returns the same object.
        cache = {}
        assert evaluate(q, env, cache) is evaluate(q, env, cache)

"""extractGroups and friends."""

import pytest

from repro.semantics.groups import extract_groups, group_of


class TestExtractGroups:
    def test_first_occurrence_order(self):
        rows = [["b"], ["a"], ["b"], ["a"]]
        assert extract_groups(rows) == [[0, 2], [1, 3]]

    def test_multi_column_keys(self):
        rows = [["a", 1], ["a", 2], ["a", 1]]
        assert extract_groups(rows) == [[0, 2], [1]]

    def test_empty_keys_single_group(self):
        rows = [[], [], []]
        assert extract_groups(rows) == [[0, 1, 2]]

    def test_no_rows(self):
        assert extract_groups([]) == []

    def test_float_int_equivalence(self):
        rows = [[1], [1.0], [2]]
        assert extract_groups(rows) == [[0, 1], [2]]

    def test_null_groups_together(self):
        rows = [[None], [None], [1]]
        assert extract_groups(rows) == [[0, 1], [2]]

    def test_partition_is_exact(self):
        rows = [["x"], ["y"], ["x"], ["z"], ["y"]]
        groups = extract_groups(rows)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(5))


class TestGroupOf:
    def test_finds_containing_group(self):
        groups = [[0, 2], [1]]
        assert group_of(groups, 2) == [0, 2]
        assert group_of(groups, 1) == [1]

    def test_missing_row_raises(self):
        with pytest.raises(ValueError):
            group_of([[0]], 5)

"""extractGroups and friends."""

import pytest

from repro.semantics.groups import extract_groups, group_index_map, \
    group_of, group_position_map


class TestExtractGroups:
    def test_first_occurrence_order(self):
        rows = [["b"], ["a"], ["b"], ["a"]]
        assert extract_groups(rows) == [[0, 2], [1, 3]]

    def test_multi_column_keys(self):
        rows = [["a", 1], ["a", 2], ["a", 1]]
        assert extract_groups(rows) == [[0, 2], [1]]

    def test_empty_keys_single_group(self):
        rows = [[], [], []]
        assert extract_groups(rows) == [[0, 1, 2]]

    def test_no_rows(self):
        assert extract_groups([]) == []

    def test_float_int_equivalence(self):
        rows = [[1], [1.0], [2]]
        assert extract_groups(rows) == [[0, 1], [2]]

    def test_null_groups_together(self):
        rows = [[None], [None], [1]]
        assert extract_groups(rows) == [[0, 1], [2]]

    def test_partition_is_exact(self):
        rows = [["x"], ["y"], ["x"], ["z"], ["y"]]
        groups = extract_groups(rows)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(5))


class TestGroupOf:
    def test_finds_containing_group(self):
        groups = [[0, 2], [1]]
        assert group_of(groups, 2) == [0, 2]
        assert group_of(groups, 1) == [1]

    def test_missing_row_raises(self):
        with pytest.raises(ValueError):
            group_of([[0]], 5)


class TestGroupIndexMaps:
    """The one-pass row→group maps that replace per-row group_of probes."""

    def test_index_map_matches_group_of(self):
        groups = [[0, 2, 4], [1], [3]]
        index = group_index_map(groups)
        assert set(index) == {0, 1, 2, 3, 4}
        for row, gi in index.items():
            assert groups[gi] == group_of(groups, row)

    def test_position_map_matches_list_index(self):
        groups = [[0, 2, 4], [1, 3]]
        positions = group_position_map(groups)
        for row, (gi, pos) in positions.items():
            assert groups[gi].index(row) == pos

    def test_empty_groups(self):
        assert group_index_map([]) == {}
        assert group_position_map([]) == {}

"""Provenance-tracking semantics (Fig. 9): operators as term rewriters."""

import pytest

from repro.lang import (
    Arithmetic,
    Env,
    Filter,
    Group,
    Join,
    LeftJoin,
    Partition,
    Proj,
    Sort,
    TableRef,
)
from repro.lang.predicates import ColCmp, ConstCmp
from repro.provenance import cell, func, group
from repro.provenance.expr import CellRef, Const, FuncApp, GroupSet
from repro.semantics import evaluate, evaluate_tracking
from repro.table import Table


@pytest.fixture
def env(tiny_table):
    return Env.of(tiny_table)


class TestBaseCase:
    def test_cells_are_references(self, env):
        tracked = evaluate_tracking(TableRef("T"), env)
        assert tracked.exprs[0][0] == CellRef("T", 0, 0)
        assert tracked.exprs[4][2] == CellRef("T", 4, 2)

    def test_values_shadow_concrete(self, env, tiny_table):
        tracked = evaluate_tracking(TableRef("T"), env)
        assert tracked.values == tiny_table.rows


class TestOperatorsRewriteTerms:
    def test_group_key_becomes_group_set(self, env):
        tracked = evaluate_tracking(
            Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2), env)
        assert tracked.exprs[0][0] == group(
            [cell("T", 0, 0), cell("T", 1, 0), cell("T", 2, 0)])

    def test_group_aggregate_collects_members(self, env):
        tracked = evaluate_tracking(
            Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2), env)
        assert tracked.exprs[0][1] == func(
            "sum", cell("T", 0, 2), cell("T", 1, 2), cell("T", 2, 2))

    def test_cumsum_is_prefix_sum(self, env):
        tracked = evaluate_tracking(
            Partition(TableRef("T"), keys=(0,), agg_func="cumsum", agg_col=2),
            env)
        assert tracked.exprs[0][3] == func("sum", cell("T", 0, 2))
        assert tracked.exprs[1][3] == func("sum", cell("T", 0, 2),
                                           cell("T", 1, 2))

    def test_rank_term_puts_own_cell_first(self, env):
        tracked = evaluate_tracking(
            Partition(TableRef("T"), keys=(0,), agg_func="rank", agg_col=2),
            env)
        expr = tracked.exprs[1][3]
        assert isinstance(expr, FuncApp) and expr.func == "rank"
        assert expr.args[0] == cell("T", 1, 2)
        assert len(expr.args) == 4  # own + 3-member pool

    def test_arithmetic_wraps_cells(self, env):
        tracked = evaluate_tracking(
            Arithmetic(TableRef("T"), func="mul", cols=(1, 2)), env)
        assert tracked.exprs[0][3] == func("mul", cell("T", 0, 1),
                                           cell("T", 0, 2))

    def test_filter_keeps_matching_rows_refs(self, env):
        tracked = evaluate_tracking(
            Filter(TableRef("T"), ConstCmp(2, ">", 15)), env)
        assert tracked.n_rows == 2
        assert tracked.exprs[0][0] == cell("T", 1, 0)

    def test_left_join_pads_with_null_consts(self, tiny_table):
        names = Table.from_rows("N", ["ID", "Label"], [["A", "alpha"]])
        env = Env.of(tiny_table, names)
        tracked = evaluate_tracking(
            LeftJoin(TableRef("T"), TableRef("N"), pred=ColCmp(0, "==", 3)),
            env)
        padded = [r for r in tracked.exprs if r[3] == Const(None)]
        assert len(padded) == 2

    def test_sort_permutes_rows(self, env):
        tracked = evaluate_tracking(
            Sort(TableRef("T"), cols=(2,), ascending=True), env)
        assert tracked.exprs[0][2] == cell("T", 0, 2)  # sales=10 first

    def test_proj_selects_expr_columns(self, env):
        tracked = evaluate_tracking(Proj(TableRef("T"), cols=(2,)), env)
        assert tracked.exprs[0] == (cell("T", 0, 2),)


class TestFlatteningAcrossOperators:
    def test_cumsum_over_group_sums_flattens(self, health_env, ground_truth):
        """Fig. 4: the quarter-4 percentage uses one flat 8-argument sum."""
        tracked = evaluate_tracking(ground_truth, health_env)
        q4 = tracked.exprs[3][2]
        assert isinstance(q4, FuncApp) and q4.func == "percent"
        inner = q4.args[0]
        assert isinstance(inner, FuncApp) and inner.func == "sum"
        assert inner.args == tuple(cell("T", i, 3) for i in range(8))
        assert isinstance(q4.args[1], GroupSet)


class TestShadowAgreement:
    """[[ [[q]]★ ]] == [[q]] — the tracked table evaluates to the concrete
    output, cell by cell (§3.1)."""

    @pytest.mark.parametrize("build", [
        lambda: Group(TableRef("T"), keys=(0,), agg_func="avg", agg_col=2),
        lambda: Partition(TableRef("T"), keys=(0,), agg_func="cumsum",
                          agg_col=2),
        lambda: Partition(TableRef("T"), keys=(1,), agg_func="dense_rank",
                          agg_col=2),
        lambda: Arithmetic(TableRef("T"), func="percent", cols=(1, 2)),
        lambda: Sort(Filter(TableRef("T"), ConstCmp(2, ">=", 15)),
                     cols=(2,), ascending=False),
    ])
    def test_expr_evaluation_matches_values(self, env, build):
        tracked = evaluate_tracking(build(), env)
        for expr_row, value_row in zip(tracked.exprs, tracked.values):
            for expr, value in zip(expr_row, value_row):
                from repro.table.values import value_eq
                assert value_eq(expr.evaluate(env), value)

    def test_to_table_matches_concrete_eval(self, health_env, ground_truth):
        tracked = evaluate_tracking(ground_truth, health_env)
        concrete = evaluate(ground_truth, health_env)
        assert tracked.to_table().same_rows(concrete)

"""Serving-layer tests: backend-pluggable warm pool, asyncio service,
admission control, schema-affinity routing.

The service's pledge is the session's pledge plus scheduling: slicing,
worker placement, warm engines and the choice of worker tier (threads or
processes, fork or spawn) change latency only — every request's ranked
queries and ``SearchStats`` are byte-identical to an uninterrupted
serial run.  The asyncio legs run under ``asyncio.run`` (no plugin).
"""

import asyncio
import multiprocessing

import pytest

from repro.benchmarks import all_tasks
from repro.engine.base import resolve_backend
from repro.serve import (
    ServiceConfig,
    ServiceOverloaded,
    SynthesisService,
    WorkerPool,
    resolve_pool_backend,
    warm_key,
)
from repro.synthesis import (
    GroundTruthStop,
    SynthesisConfig,
    SynthesisSession,
    Synthesizer,
)
from repro.util.timer import Deadline

TASKS = {t.name: t for t in all_tasks()}

#: Easy task for fast parity legs.
EASY = TASKS["fe01_total_sales_per_region"]
#: Hard task whose search outlasts any budget used here — the one to
#: keep in flight while testing admission, cancellation and timeouts.
HARD = TASKS["fh02_region_quarter_share"]
#: The registry task whose concrete sub-plans are cross-request-cache
#: eligible (multi-operator blocks that repeat across candidates).
SHARED = TASKS["fe20_share_of_region_total"]

VISITED_BUDGET = 400

DETERMINISTIC_FIELDS = ("visited", "pruned", "expanded", "concrete_checked",
                        "consistent_found", "timed_out", "skeletons",
                        "max_skeleton_size")

BACKENDS = ("threads", "processes")


def _config(task, budget=VISITED_BUDGET, **overrides):
    return task.config.replace(timeout_s=None, max_visited=budget,
                               **overrides)


def _reference(task, config, stop=None):
    return Synthesizer("provenance", config).run(
        task.tables, task.demonstration, stop)


def _assert_identical(reference, result):
    assert result.queries == reference.queries
    for field in DETERMINISTIC_FIELDS:
        assert getattr(result.stats, field) == \
            getattr(reference.stats, field), field
    assert result.target == reference.target


def test_request_matches_uninterrupted_run():
    """Sliced, pool-scheduled execution is pure preemption: byte-identical
    ranked queries and stats versus the classic serial run (on whatever
    tier the environment resolves — the CI matrix covers both)."""
    async def main():
        svc_cfg = ServiceConfig(pool_size=2, slice_pops=50)
        async with SynthesisService(svc_cfg) as svc:
            for task in (EASY, HARD):
                config = _config(task)
                stop = GroundTruthStop(task.ground_truth)
                reference = _reference(task, config, stop)
                handle = svc.submit(task.tables, task.demonstration,
                                    config, stop=stop)
                result = await handle.result()
                _assert_identical(reference, result)
                assert handle.status == "done"

    asyncio.run(main())


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
@pytest.mark.parametrize("engine", ["columnar", "numpy"])
def test_differential_thread_vs_process_tiers(start_method, engine):
    """The tentpole differential: the same request set produces identical
    ranked queries and SearchStats on the thread-backed and the
    process-backed pool, under fork and spawn, columnar and numpy."""
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{start_method} not supported here")
    if engine == "numpy" and resolve_backend("numpy") != "numpy":
        pytest.skip("NumPy not installed (numpy backend degrades)")
    requests = [
        (EASY, _config(EASY, backend=engine),
         GroundTruthStop(EASY.ground_truth)),
        (SHARED, _config(SHARED, backend=engine, top_n=5), None),
    ]
    references = [_reference(task, config, stop)
                  for task, config, stop in requests]

    async def tier(backend):
        pool = WorkerPool(2, backend=backend, start_method=start_method
                          if backend == "processes" else None)
        svc_cfg = ServiceConfig(pool_size=2, slice_pops=40)
        async with SynthesisService(svc_cfg, pool=pool) as svc:
            handles = [svc.submit(task.tables, task.demonstration, config,
                                  stop=stop)
                       for task, config, stop in requests]
            results = [await handle.result() for handle in handles]
        pool.close()
        return results

    for backend in BACKENDS:
        results = asyncio.run(tier(backend))
        for reference, result in zip(references, results):
            _assert_identical(reference, result)


def test_stream_yields_hits_in_discovery_order():
    async def main():
        async with SynthesisService(ServiceConfig(slice_pops=25)) as svc:
            config = _config(EASY, top_n=10)
            handle = svc.submit(EASY.tables, EASY.demonstration, config)
            streamed = [query async for query in handle.stream()]
            result = await handle.result()
            assert len(streamed) == result.stats.consistent_found
            # Discovery order upstream of ranking: same multiset.
            assert sorted(map(repr, streamed)) == \
                sorted(map(repr, result.queries))

    asyncio.run(main())


def test_admission_rejects_at_bound_and_recovers():
    async def main():
        svc_cfg = ServiceConfig(pool_size=1, max_requests=1, slice_pops=50)
        async with SynthesisService(svc_cfg) as svc:
            config = _config(HARD, budget=10**6, top_n=10**6)
            first = svc.submit(HARD.tables, HARD.demonstration, config,
                               worker=0)
            with pytest.raises(ServiceOverloaded, match="retry later"):
                svc.submit(HARD.tables, HARD.demonstration, config)
            first.cancel()
            await first.result()
            assert first.status == "cancelled"
            # The slot freed up: admission works again.
            retry = svc.submit(EASY.tables, EASY.demonstration,
                               _config(EASY))
            await retry.result()
            assert retry.status == "done"

    asyncio.run(main())


def test_per_request_timeout_reports_timed_out():
    """The request budget is wall clock from admission (queueing included)
    — an already-expired deadline surfaces as a TIMED_OUT partial result
    with the classic stats marker, before any search runs."""
    async def main():
        async with SynthesisService(ServiceConfig(pool_size=1)) as svc:
            config = _config(HARD, budget=10**6, top_n=10**6)
            handle = svc.submit(HARD.tables, HARD.demonstration, config,
                                timeout_s=1e-9)
            result = await handle.result()
            assert handle.status == "timed_out"
            assert result.stats.timed_out

    asyncio.run(main())


@pytest.mark.parametrize("backend", BACKENDS)
def test_cancel_mid_flight_returns_partial_result(backend):
    """Cancellation reaches a running slice on either tier — directly on
    the shared session (threads), through the shared-memory flag the
    session polls every pop (processes)."""
    async def main():
        svc_cfg = ServiceConfig(slice_pops=20, pool_backend=backend)
        async with SynthesisService(svc_cfg) as svc:
            config = _config(HARD, budget=10**6, top_n=10**6)
            handle = svc.submit(HARD.tables, HARD.demonstration, config)
            # Let a few slices land, then pull the plug.
            while handle.session.stats.visited < 100:
                await asyncio.sleep(0.001)
            handle.cancel()
            result = await handle.result()
            assert handle.status == "cancelled"
            assert result.stats.visited < 10**6
            assert result.target is None

    asyncio.run(main())


@pytest.mark.parametrize("backend", BACKENDS)
def test_warm_worker_reuses_engine_and_shares_plans(backend):
    """The pool's two latency tiers: same worker + same request shape
    reuses the warm engine outright; a *different* worker's fresh engine
    still gets cross-request sub-plan hits from the shared cache tier
    (pool-wide dict on threads, shm-digest index across processes)."""
    async def main():
        pool = WorkerPool(2, backend=backend)
        async with SynthesisService(pool=pool) as svc:
            config = _config(SHARED)
            cold = svc.submit(SHARED.tables, SHARED.demonstration, config,
                              worker=0)
            first = await cold.result()
            assert first.engine_stats.cross_shard_hits == 0

            # Same worker, same shape: engine served warm from the cache.
            warm = svc.submit(SHARED.tables, SHARED.demonstration, config,
                              worker=0)
            second = await warm.result()
            _assert_identical(first, second)

            # Other worker, fresh engine: the shared sub-plan tier serves
            # blocks the first request published.
            other = svc.submit(SHARED.tables, SHARED.demonstration, config,
                               worker=1)
            third = await other.result()
            _assert_identical(first, third)
            assert third.engine_stats.cross_shard_hits >= 1

            telemetry = pool.telemetry()
            assert telemetry["backend"] == backend
            assert telemetry["cold_builds"] == 2    # one per worker
            assert telemetry["warm_hits"] >= 1
            assert telemetry["warm_keys"] == 2
            per_worker = telemetry["per_worker"]
            assert [w["worker_id"] for w in per_worker] == [0, 1]
            assert per_worker[0]["warm_hits"] >= 1  # the repeat landed here
            assert all(w["queue_depth"] == 0 for w in per_worker)
            assert sum(w["slices"] for w in per_worker) >= 3
        pool.close()

    asyncio.run(main())


def test_affinity_routing_raises_warm_hit_rate():
    """Schema-affinity placement vs blind rotation on a repeated-schema
    mix cycling through a two-worker pool.  Affinity pins each request
    shape to one worker — exactly one cold serve per distinct
    ``(warm key, env digest)``; round-robin scatters every shape across
    both workers — the measurable win the routing exists for."""
    from repro.parallel.plan_cache import env_digest

    mix = [EASY, HARD, SHARED]
    distinct = len({
        (warm_key(_config(task, budget=60, top_n=10**6), "provenance"),
         env_digest(SynthesisSession(task.tables, task.demonstration).env))
        for task in mix})

    async def run_mix(routing):
        svc_cfg = ServiceConfig(pool_size=2, slice_pops=100,
                                pool_backend="threads", routing=routing)
        async with SynthesisService(svc_cfg) as svc:
            for _ in range(3):
                for task in mix:
                    handle = svc.submit(task.tables, task.demonstration,
                                        _config(task, budget=60,
                                                top_n=10**6))
                    await handle.result()
            telemetry = svc.pool.telemetry()
        return telemetry["warm_hits"], telemetry["warm_misses"]

    async def main():
        affinity_hits, affinity_misses = await run_mix("affinity")
        rr_hits, rr_misses = await run_mix("round_robin")
        assert affinity_hits + affinity_misses == 9
        assert rr_hits + rr_misses == 9
        # Perfect stickiness: one cold serve per distinct shape...
        assert affinity_misses == distinct
        # ...while rotation re-serves every shape cold on both workers.
        assert rr_misses == 2 * distinct
        assert affinity_hits > rr_hits

    asyncio.run(main())


def test_warm_key_ignores_budgets_but_splits_techniques():
    base = SynthesisConfig()
    assert warm_key(base, "provenance") == \
        warm_key(base.replace(max_visited=7, top_n=3), "provenance")
    assert warm_key(base, "provenance") != warm_key(base, "value")
    # A numpy request degraded to the fallback shares that warm engine.
    if resolve_backend("numpy") == resolve_backend("columnar"):
        assert warm_key(base.replace(backend="numpy"), "provenance") == \
            warm_key(base.replace(backend="columnar"), "provenance")


def test_resolve_pool_backend(monkeypatch):
    monkeypatch.delenv("REPRO_POOL_BACKEND", raising=False)
    assert resolve_pool_backend(None, 1) == "threads"
    assert resolve_pool_backend(None, 2) == "processes"
    assert resolve_pool_backend("auto", 4) == "processes"
    assert resolve_pool_backend("threads", 4) == "threads"
    monkeypatch.setenv("REPRO_POOL_BACKEND", "threads")
    assert resolve_pool_backend(None, 4) == "threads"
    # Explicit argument beats the environment.
    assert resolve_pool_backend("processes", 4) == "processes"
    with pytest.raises(ValueError, match="unknown pool backend"):
        resolve_pool_backend("fibers", 2)
    with pytest.raises(ValueError, match="routing"):
        ServiceConfig(routing="random")


@pytest.mark.parametrize("backend", BACKENDS)
def test_intra_request_fanout_is_byte_identical(backend):
    """workers > 1 is honored inside the service: with idle pool capacity
    the request re-dispatches its remaining lanes at a round boundary —
    and the result is still byte-identical to the serial run."""
    serial = _config(HARD, budget=300, top_n=10**6)
    reference = _reference(HARD, serial)
    fan = serial.replace(workers=2, parallel_executor="thread")

    async def main():
        svc_cfg = ServiceConfig(pool_size=2, slice_pops=30,
                                pool_backend=backend)
        async with SynthesisService(svc_cfg) as svc:
            handle = svc.submit(HARD.tables, HARD.demonstration, fan)
            result = await handle.result()
            _assert_identical(reference, result)
            assert result.workers == 2      # the sharded path actually ran
            with pytest.raises(ValueError, match="out of range"):
                svc.submit(EASY.tables, EASY.demonstration, worker=2)

    asyncio.run(main())


def test_close_cancels_live_requests_and_stops_admission():
    async def main():
        svc = SynthesisService(ServiceConfig(pool_size=1, slice_pops=20))
        async with svc:
            config = _config(HARD, budget=10**6, top_n=10**6)
            handle = svc.submit(HARD.tables, HARD.demonstration, config)
        # __aexit__ → close(): the live request was cancelled and resolved.
        assert handle.status == "cancelled"
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(EASY.tables, EASY.demonstration)

    asyncio.run(main())


def test_caller_supplied_pool_survives_service():
    """Warm state persists across service restarts when the caller owns
    the pool — the whole point of decoupling pool and service lifetime."""
    async def main():
        pool = WorkerPool(1)
        async with SynthesisService(pool=pool) as svc:
            await svc.submit(SHARED.tables, SHARED.demonstration,
                             _config(SHARED), worker=0).result()
        built = pool.telemetry()["cold_builds"]
        assert built == 1
        # New service, same pool: the engine is already warm.
        async with SynthesisService(pool=pool) as svc:
            await svc.submit(SHARED.tables, SHARED.demonstration,
                             _config(SHARED), worker=0).result()
        telemetry = pool.telemetry()
        assert telemetry["cold_builds"] == built
        assert telemetry["warm_hits"] >= 1
        pool.close()
        pool.close()                    # idempotent
        session = SynthesisSession(SHARED.tables, SHARED.demonstration,
                                   _config(SHARED))
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit_request(session, worker_id=0, slice_pops=10,
                                deadline=Deadline(None), env_key="x",
                                on_slice=lambda outcome: None)

    asyncio.run(main())


def test_close_surfaces_stuck_worker_instead_of_hanging():
    """A worker mid-slice past the drain timeout is reported, not waited
    on forever — interpreter shutdown can't hang on the pool."""
    pool = WorkerPool(1, backend="threads")
    session = SynthesisSession(
        HARD.tables, HARD.demonstration,
        _config(HARD, budget=20000, top_n=10**6))
    pool.submit_request(session, worker_id=0, slice_pops=10**9,
                        deadline=Deadline(None), env_key="stuck",
                        on_slice=lambda outcome: None)
    with pytest.raises(RuntimeError, match="did not drain"):
        pool.close(timeout_s=0.05)
    session.cancel()                    # let the daemon thread wind down
    pool.close()                        # already closed: no-op, no raise


def test_slices_interleave_requests_on_one_worker():
    """Cooperative round-robin: two requests pinned to one worker make
    progress together instead of head-of-line blocking."""
    async def main():
        svc_cfg = ServiceConfig(pool_size=1, slice_pops=10)
        async with SynthesisService(svc_cfg) as svc:
            config = _config(HARD, budget=3000, top_n=10**6)
            left = svc.submit(HARD.tables, HARD.demonstration, config,
                              worker=0)
            right = svc.submit(HARD.tables, HARD.demonstration, config,
                               worker=0)
            # Both reach RUNNING mid-flight: neither ran to completion
            # before the other got its first slice on the shared worker.
            while left.status != "running" or right.status != "running":
                await asyncio.sleep(0.001)
            assert min(left.session.stats.visited,
                       right.session.stats.visited) > 0
            results = await asyncio.gather(left.result(), right.result())
            _assert_identical(results[0], results[1])

    asyncio.run(main())


def test_process_tier_leaves_no_shm_segments():
    """Every env segment, plan publish and manager resource is reclaimed
    when the pool closes — the serve-side leak check CI runs on the
    process tier."""
    from repro.engine import shm

    async def main():
        svc_cfg = ServiceConfig(pool_size=2, slice_pops=50,
                                pool_backend="processes")
        async with SynthesisService(svc_cfg) as svc:
            prefix = svc.pool._backend.prefix
            handles = [svc.submit(task.tables, task.demonstration,
                                  _config(task))
                       for task in (EASY, SHARED)]
            for handle in handles:
                await handle.result()
        return prefix

    prefix = asyncio.run(main())
    assert shm.scan_segments(prefix) == []

"""Serving-layer tests: warm pool, asyncio service, admission control.

The service's pledge is the session's pledge plus scheduling: slicing,
worker placement and warm engines change latency only — every request's
ranked queries and ``SearchStats`` are byte-identical to an uninterrupted
serial run.  The asyncio legs run under ``asyncio.run`` (no plugin).
"""

import asyncio

import pytest

from repro.benchmarks import all_tasks
from repro.serve import (
    ServiceConfig,
    ServiceOverloaded,
    SynthesisService,
    WorkerPool,
    warm_key,
)
from repro.synthesis import GroundTruthStop, SynthesisConfig, Synthesizer

TASKS = {t.name: t for t in all_tasks()}

#: Easy task for fast parity legs.
EASY = TASKS["fe01_total_sales_per_region"]
#: Hard task whose search outlasts any budget used here — the one to
#: keep in flight while testing admission, cancellation and timeouts.
HARD = TASKS["fh02_region_quarter_share"]
#: The registry task whose concrete sub-plans are cross-request-cache
#: eligible (multi-operator blocks that repeat across candidates).
SHARED = TASKS["fe20_share_of_region_total"]

VISITED_BUDGET = 400

DETERMINISTIC_FIELDS = ("visited", "pruned", "expanded", "concrete_checked",
                        "consistent_found", "timed_out", "skeletons",
                        "max_skeleton_size")


def _config(task, budget=VISITED_BUDGET, **overrides):
    return task.config.replace(timeout_s=None, max_visited=budget,
                               **overrides)


def _reference(task, config, stop=None):
    return Synthesizer("provenance", config).run(
        task.tables, task.demonstration, stop)


def _assert_identical(reference, result):
    assert result.queries == reference.queries
    for field in DETERMINISTIC_FIELDS:
        assert getattr(result.stats, field) == \
            getattr(reference.stats, field), field
    assert result.target == reference.target


def test_request_matches_uninterrupted_run():
    """Sliced, pool-scheduled execution is pure preemption: byte-identical
    ranked queries and stats versus the classic serial run."""
    async def main():
        svc_cfg = ServiceConfig(pool_size=2, slice_pops=50)
        async with SynthesisService(svc_cfg) as svc:
            for task in (EASY, HARD):
                config = _config(task)
                stop = GroundTruthStop(task.ground_truth)
                reference = _reference(task, config, stop)
                handle = svc.submit(task.tables, task.demonstration,
                                    config, stop=stop)
                result = await handle.result()
                _assert_identical(reference, result)
                assert handle.status == "done"

    asyncio.run(main())


def test_stream_yields_hits_in_discovery_order():
    async def main():
        async with SynthesisService(ServiceConfig(slice_pops=25)) as svc:
            config = _config(EASY, top_n=10)
            handle = svc.submit(EASY.tables, EASY.demonstration, config)
            streamed = [query async for query in handle.stream()]
            result = await handle.result()
            assert len(streamed) == result.stats.consistent_found
            # Discovery order upstream of ranking: same multiset.
            assert sorted(map(repr, streamed)) == \
                sorted(map(repr, result.queries))

    asyncio.run(main())


def test_admission_rejects_at_bound_and_recovers():
    async def main():
        svc_cfg = ServiceConfig(pool_size=1, max_requests=1, slice_pops=50)
        async with SynthesisService(svc_cfg) as svc:
            config = _config(HARD, budget=10**6, top_n=10**6)
            first = svc.submit(HARD.tables, HARD.demonstration, config,
                               worker=0)
            with pytest.raises(ServiceOverloaded, match="retry later"):
                svc.submit(HARD.tables, HARD.demonstration, config)
            first.cancel()
            await first.result()
            assert first.status == "cancelled"
            # The slot freed up: admission works again.
            retry = svc.submit(EASY.tables, EASY.demonstration,
                               _config(EASY))
            await retry.result()
            assert retry.status == "done"

    asyncio.run(main())


def test_per_request_timeout_reports_timed_out():
    """The request budget is wall clock from admission (queueing included)
    — an already-expired deadline surfaces as a TIMED_OUT partial result
    with the classic stats marker, before any search runs."""
    async def main():
        async with SynthesisService(ServiceConfig(pool_size=1)) as svc:
            config = _config(HARD, budget=10**6, top_n=10**6)
            handle = svc.submit(HARD.tables, HARD.demonstration, config,
                                timeout_s=1e-9)
            result = await handle.result()
            assert handle.status == "timed_out"
            assert result.stats.timed_out

    asyncio.run(main())


def test_cancel_mid_flight_returns_partial_result():
    async def main():
        async with SynthesisService(ServiceConfig(slice_pops=20)) as svc:
            config = _config(HARD, budget=10**6, top_n=10**6)
            handle = svc.submit(HARD.tables, HARD.demonstration, config)
            # Let a few slices land, then pull the plug.
            while handle.session.stats.visited < 100:
                await asyncio.sleep(0.001)
            handle.cancel()
            result = await handle.result()
            assert handle.status == "cancelled"
            assert result.stats.visited < 10**6
            assert result.target is None

    asyncio.run(main())


def test_warm_worker_reuses_engine_and_shares_plans():
    """The pool's two latency tiers: same worker + same request shape
    reuses the warm engine outright; a *different* worker's fresh engine
    still gets cross-request sub-plan hits from the pool-wide cache."""
    async def main():
        pool = WorkerPool(2)
        async with SynthesisService(pool=pool) as svc:
            config = _config(SHARED)
            cold = svc.submit(SHARED.tables, SHARED.demonstration, config,
                              worker=0)
            first = await cold.result()
            assert first.engine_stats.cross_shard_hits == 0

            # Same worker, same shape: engine served warm from the cache.
            warm = svc.submit(SHARED.tables, SHARED.demonstration, config,
                              worker=0)
            second = await warm.result()
            _assert_identical(first, second)
            assert pool.worker(0).warm_hits >= 1

            # Other worker, fresh engine: the pool-wide sub-plan cache
            # serves blocks the first request published.
            other = svc.submit(SHARED.tables, SHARED.demonstration, config,
                               worker=1)
            third = await other.result()
            _assert_identical(first, third)
            assert third.engine_stats.cross_shard_hits >= 1

            telemetry = pool.telemetry()
            assert telemetry["cold_builds"] == 2    # one per worker
            assert telemetry["warm_hits"] >= 1
            assert telemetry["warm_keys"] == 2
        pool.close()

    asyncio.run(main())


def test_warm_key_ignores_budgets_but_splits_techniques():
    base = SynthesisConfig()
    assert warm_key(base, "provenance") == \
        warm_key(base.replace(max_visited=7, top_n=3), "provenance")
    assert warm_key(base, "provenance") != warm_key(base, "value")
    # A numpy request degraded to the fallback shares that warm engine.
    from repro.engine.base import resolve_backend
    if resolve_backend("numpy") == resolve_backend("columnar"):
        assert warm_key(base.replace(backend="numpy"), "provenance") == \
            warm_key(base.replace(backend="columnar"), "provenance")


def test_submit_forces_serial_sessions_and_validates_worker():
    async def main():
        async with SynthesisService(ServiceConfig(pool_size=2)) as svc:
            handle = svc.submit(EASY.tables, EASY.demonstration,
                                _config(EASY, workers=4,
                                        parallel_executor="thread"))
            assert handle.session.config.workers == 1
            await handle.result()
            with pytest.raises(ValueError, match="out of range"):
                svc.submit(EASY.tables, EASY.demonstration, worker=2)

    asyncio.run(main())


def test_close_cancels_live_requests_and_stops_admission():
    async def main():
        svc = SynthesisService(ServiceConfig(pool_size=1, slice_pops=20))
        async with svc:
            config = _config(HARD, budget=10**6, top_n=10**6)
            handle = svc.submit(HARD.tables, HARD.demonstration, config)
        # __aexit__ → close(): the live request was cancelled and resolved.
        assert handle.status == "cancelled"
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(EASY.tables, EASY.demonstration)

    asyncio.run(main())


def test_caller_supplied_pool_survives_service():
    """Warm state persists across service restarts when the caller owns
    the pool — the whole point of decoupling pool and service lifetime."""
    async def main():
        pool = WorkerPool(1)
        async with SynthesisService(pool=pool) as svc:
            await svc.submit(SHARED.tables, SHARED.demonstration,
                             _config(SHARED), worker=0).result()
        built = pool.telemetry()["cold_builds"]
        assert built == 1
        # New service, same pool: the engine is already warm.
        async with SynthesisService(pool=pool) as svc:
            await svc.submit(SHARED.tables, SHARED.demonstration,
                             _config(SHARED), worker=0).result()
        telemetry = pool.telemetry()
        assert telemetry["cold_builds"] == built
        assert telemetry["warm_hits"] >= 1
        pool.close()
        pool.close()                    # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(0, lambda: None)

    asyncio.run(main())


def test_slices_interleave_requests_on_one_worker():
    """Cooperative round-robin: two requests pinned to one worker make
    progress together instead of head-of-line blocking."""
    async def main():
        svc_cfg = ServiceConfig(pool_size=1, slice_pops=10)
        async with SynthesisService(svc_cfg) as svc:
            config = _config(HARD, budget=3000, top_n=10**6)
            left = svc.submit(HARD.tables, HARD.demonstration, config,
                              worker=0)
            right = svc.submit(HARD.tables, HARD.demonstration, config,
                               worker=0)
            # Wait until both have run at least one slice.
            while min(left.session.stats.visited,
                      right.session.stats.visited) < 50:
                await asyncio.sleep(0.001)
            assert left.status == "running" and right.status == "running"
            results = await asyncio.gather(left.result(), right.result())
            _assert_identical(results[0], results[1])

    asyncio.run(main())

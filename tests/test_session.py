"""Resumable-session tests: the determinism pledge under preemption.

A :class:`~repro.synthesis.session.SynthesisSession` driven in slices,
pickled mid-run, checkpointed and resumed — or re-dispatched onto shard
workers — must produce byte-identical ranked queries and ``SearchStats``
to the uninterrupted serial run.  Every registry task runs through the
checkpoint/resume round-trip, serial and ``workers=4`` (the acceptance
matrix), under the same visited-query budget discipline as the parallel
differential suite.
"""

import pickle

import pytest

from repro.benchmarks import all_tasks
from repro.engine import shm
from repro.synthesis import (
    GroundTruthStop,
    SynthesisConfig,
    SynthesisSession,
    Synthesizer,
)


@pytest.fixture(scope="session", autouse=True)
def no_leaked_shm_segments():
    before = set(shm.scan_segments())
    yield
    leaked = sorted(set(shm.scan_segments()) - before)
    assert not leaked, f"leaked shared-memory segments: {leaked}"


#: Mirrors the parallel differential budget: deterministic prefixes on
#: every machine, the whole sweep in tens of seconds.
VISITED_BUDGET = 400

TASKS = all_tasks()

#: Stats that must be byte-identical (elapsed_s is wall clock).
DETERMINISTIC_FIELDS = ("visited", "pruned", "expanded", "concrete_checked",
                        "consistent_found", "timed_out", "skeletons",
                        "max_skeleton_size")

#: Small subset for the per-backend and edge-case legs.
FOCUS_TASKS = [t for t in TASKS if t.name in (
    "fe01_total_sales_per_region",
    "fe10_salary_rank_within_dept",
    "fe20_share_of_region_total",
    "fh02_region_quarter_share",
)]

#: A hard task whose search space far outlasts VISITED_BUDGET — the one
#: to interrupt when a test needs the session still mid-flight.
HARD_TASK = next(t for t in TASKS if t.name == "fh02_region_quarter_share")


def _config(task, budget=VISITED_BUDGET, **overrides):
    return task.config.replace(timeout_s=None, max_visited=budget,
                               **overrides)


def _baseline(task, config, stop=None):
    """The uninterrupted serial reference run."""
    return Synthesizer("provenance", config).run(
        task.tables, task.demonstration, stop)


def _session(task, config, stop=None):
    return SynthesisSession(task.tables, task.demonstration, config,
                            stop=stop)


def _assert_identical(reference, result):
    assert result.queries == reference.queries
    for field in DETERMINISTIC_FIELDS:
        assert getattr(result.stats, field) == \
            getattr(reference.stats, field), field
    assert result.target == reference.target
    assert result.target_rank == reference.target_rank


@pytest.mark.parametrize("task", TASKS, ids=[t.name for t in TASKS])
def test_checkpoint_resume_identical_serial_and_sharded(task):
    """The acceptance matrix: a session stepped partway, checkpointed,
    resumed and driven to completion — serially or re-dispatched onto 4
    shard workers — matches the uninterrupted run byte-for-byte."""
    config = _config(task)
    stop = GroundTruthStop(task.ground_truth)
    reference = _baseline(task, config, stop)

    # Serial: interrupt mid-run, checkpoint, resume, finish in odd slices.
    session = _session(task, config, stop)
    session.step(max_pops=137)
    resumed = SynthesisSession.resume(session.checkpoint())
    while not resumed.done:
        resumed.step(max_pops=61)
    _assert_identical(reference, resumed.result())

    # Sharded: the same interrupted state re-dispatched onto warm-start
    # shard workers at a round boundary.
    sharded_cfg = _config(task, workers=4, parallel_executor="thread")
    session4 = SynthesisSession.resume(session.checkpoint())
    session4.config = sharded_cfg
    result4 = session4.run()
    _assert_identical(reference, result4)


@pytest.mark.parametrize("backend", ("row", "columnar", "numpy"))
def test_checkpoint_resume_identical_on_every_backend(backend):
    """The round-trip holds on all three engine backends (numpy degrades
    to columnar without NumPy — the fallback contract is part of this)."""
    for task in FOCUS_TASKS:
        config = _config(task, backend=backend)
        reference = _baseline(task, config)
        session = _session(task, config)
        session.step(max_pops=83)
        resumed = SynthesisSession.resume(session.checkpoint())
        while not resumed.done:
            resumed.step(max_pops=47)
        _assert_identical(reference, resumed.result())


def test_pickle_round_trip_mid_run():
    """A mid-run session is plain-pickle serializable; the copy carries
    the full search state and continues independently of the original."""
    task = HARD_TASK
    config = _config(task, top_n=10**6)      # budget-bound, not top_n-bound
    session = _session(task, config)
    session.step(max_pops=50)
    blob = pickle.dumps(session)
    assert isinstance(blob, bytes)
    copy = pickle.loads(blob)
    assert isinstance(copy, SynthesisSession)
    assert copy.status == "active"
    assert copy.stats.as_dict() == session.stats.as_dict()
    # The two now evolve independently...
    copy.step(max_pops=10)
    assert copy.stats.visited == session.stats.visited + 10
    # ...and both still converge to the same final state.
    while not copy.done:
        copy.step(max_pops=25)
    while not session.done:
        session.step(max_pops=40)
    _assert_identical(session.result(), copy.result())


def test_checkpoint_is_side_effect_free_and_idempotent():
    """Satellite: a checkpoint (even one taken mid sibling-family
    prefetch) must not perturb the live session's engine accounting —
    the live run's merged EngineStats equal the uninterrupted run's
    exactly, with ``consistency_checks`` the sentinel counter."""
    task = HARD_TASK
    config = _config(task, budget=2000, top_n=10**6)
    reference = _baseline(task, config)
    ref_engine = reference.engine_stats.as_dict()

    # Cut points sweep across sibling-family prefetch boundaries (families
    # are batch-warmed at expansion time; pops 5..80 land before, inside
    # and after warmed families).
    for cut in (5, 17, 40, 80):
        session = _session(task, config)
        session.step(max_pops=cut)
        pre_checks = session.engine_stats().consistency_checks
        blob = session.checkpoint()
        assert session.checkpoint() == blob          # idempotent
        assert session.engine_stats().consistency_checks == pre_checks

        # The live session continues as if no checkpoint was taken.
        while not session.done:
            session.step(max_pops=13)
        live = session.result()
        _assert_identical(reference, live)
        assert live.engine_stats.as_dict() == ref_engine

        # The resumed session rebuilds caches (fresh engine), so its
        # *traffic* may exceed the warm run's — but never double-counts
        # the prefix the blob already carries, and results stay identical.
        resumed = SynthesisSession.resume(blob)
        assert resumed.engine_stats().consistency_checks == pre_checks
        while not resumed.done:
            resumed.step(max_pops=29)
        _assert_identical(reference, resumed.result())
        assert resumed.result().engine_stats.consistency_checks >= pre_checks


def test_cancellation_mid_step():
    """cancel() issued from inside a step (here via the stop predicate,
    the shape a service timeout takes) halts at the next pop; the partial
    result is still ranked and the session reports cancelled, not done."""
    task = HARD_TASK
    config = _config(task, budget=2000, top_n=10**6)
    holder = {}
    calls = {"n": 0}

    def cancelling_probe(query):
        calls["n"] += 1
        if calls["n"] >= 2:
            holder["session"].cancel()
        return False                     # never a target: pure cancellation

    session = _session(task, config, stop=cancelling_probe)
    holder["session"] = session
    report = session.step()              # unbounded — cancel cuts it short
    assert session.status == "cancelled"
    assert report.status == "cancelled" and report.done
    partial = session.result()
    assert partial.stats.consistent_found >= 2
    assert partial.stats.visited < 2000          # stopped well before budget
    assert partial.target is None
    # A cancelled session refuses further work but keeps its result.
    report = session.step(max_pops=10)
    assert report.pops == 0 and report.status == "cancelled"


def test_cancel_before_start_and_after_done():
    task = FOCUS_TASKS[0]
    config = _config(task, budget=50)
    session = _session(task, config)
    session.cancel()
    report = session.step()
    assert report.pops == 0 and session.status == "cancelled"

    finished = _session(task, config)
    finished.step()
    assert finished.done
    finished.cancel()                   # harmless after completion
    assert finished.result() is not None


def test_exhausted_budget_resume_does_not_dispatch():
    """A session whose visited budget is already consumed must end with
    the serial loop's timeout semantics on run(), even under workers>1 —
    the zero-pop budget check fires before any shard dispatch."""
    task = HARD_TASK

    # Step under a loose config, then tighten max_visited to exactly what
    # was consumed: the session is ACTIVE with zero budget left.  (visited
    # includes admission-time skeleton prunes, so derive the budget from
    # the counter, not the pop count.)
    session = _session(task, _config(task, budget=10**6, top_n=10**6))
    session.step(max_pops=60)
    assert not session.done
    consumed = session.stats.visited
    reference = _baseline(task, _config(task, budget=consumed, top_n=10**6))
    session.config = _config(task, budget=consumed, top_n=10**6, workers=4,
                             parallel_executor="thread")
    result = session.run()
    _assert_identical(reference, result)
    assert result.stats.timed_out


def test_prebuilt_abstraction_session_cannot_checkpoint():
    from repro.abstraction.base import make_abstraction

    task = FOCUS_TASKS[0]
    session = SynthesisSession(
        task.tables, task.demonstration, _config(task),
        abstraction=make_abstraction("none"))
    session.step(max_pops=5)
    with pytest.raises(TypeError, match="cannot be pickled"):
        session.checkpoint()


def test_stale_checkpoint_version_rejected():
    task = FOCUS_TASKS[0]
    session = _session(task, _config(task))
    session.step(max_pops=5)
    state = session.__getstate__()
    state["version"] = 999
    hollow = SynthesisSession.__new__(SynthesisSession)
    with pytest.raises(ValueError, match="checkpoint version"):
        hollow.__setstate__(state)


def test_step_streams_new_queries_in_discovery_order():
    task = FOCUS_TASKS[0]
    config = _config(task, budget=2000, top_n=10)
    reference = _baseline(task, config)
    session = _session(task, config)
    streamed = []
    while not session.done:
        streamed.extend(session.step(max_pops=25).new_queries)
    # Discovery order; result() ranks.  Same multiset either way.
    assert sorted(map(repr, streamed)) == \
        sorted(map(repr, reference.queries))
    assert session.result().queries == reference.queries


def test_session_reports_run_scoped_engine_delta():
    """A warm engine handed to a session must not leak other sessions'
    traffic into its engine_stats (the attach-time baseline delta)."""
    from repro.engine.base import make_engine
    from repro.synthesis.synthesizer import build_abstraction

    task = FOCUS_TASKS[0]
    config = _config(task, budget=300)
    engine = make_engine(config.backend)
    abstraction = build_abstraction("provenance", config)
    abstraction.bind_engine(engine)

    first = _session(task, config)
    first.attach_engine(engine, abstraction)
    first.step()
    first_checks = first.result().engine_stats.consistency_checks

    second = _session(task, config)
    second.attach_engine(engine, abstraction)
    second.step()
    stats = second.result().engine_stats
    # The warm engine served most checks from its verdict cache; the
    # second session's recorded traffic is its own delta, not the total.
    assert stats.consistency_checks <= first_checks
    assert engine.stats.consistency_checks >= first_checks


def test_synthesizer_session_entrypoint_matches_run():
    task = FOCUS_TASKS[0]
    config = _config(task)
    stop = GroundTruthStop(task.ground_truth)
    reference = _baseline(task, config, stop)
    synthesizer = Synthesizer("provenance", config)
    session = synthesizer.session(task.tables, task.demonstration, stop)
    _assert_identical(reference, session.run())


def test_workers_require_named_abstraction():
    task = FOCUS_TASKS[0]
    config = SynthesisConfig(workers=2, parallel_executor="thread")
    from repro.abstraction.base import make_abstraction
    session = SynthesisSession(task.tables, task.demonstration, config,
                               abstraction=make_abstraction("none"))
    with pytest.raises(ValueError, match="requires the abstraction"):
        session.run()


def test_stripped_checkpoint_resumes_with_supplied_env():
    """``checkpoint(strip_env=True)`` is the process-tier wire format:
    the blob carries search state only, the tables travel once over the
    shared-memory store and are re-attached at resume.  Resuming with
    the (equal) env is byte-identical to the env-carrying round trip."""
    task = HARD_TASK
    config = _config(task)
    session = _session(task, config)
    session.step(max_pops=137)

    full = session.checkpoint()
    lean = session.checkpoint(strip_env=True)
    assert len(lean) < len(full)        # the tables dominate the blob

    with pytest.raises(ValueError, match="env"):
        SynthesisSession.resume(lean)

    reference = SynthesisSession.resume(full).run()
    resumed = SynthesisSession.resume(lean, env=session.env).run()
    _assert_identical(reference, resumed)
    # strip_env is side-effect free: the live session kept its env.
    assert session.env is not None
    _assert_identical(reference, session.run())


def test_cancel_probe_polled_every_pop():
    """The process tier cancels through ``set_cancel_probe`` — a flag
    the step loop polls once per pop, so a cross-process cancel lands
    mid-slice without waiting for the slice boundary."""
    task = HARD_TASK
    session = _session(task, _config(task, budget=10**6, top_n=10**6))
    flag = {"set": False}
    polls = {"n": 0}

    def probe():
        polls["n"] += 1
        if polls["n"] >= 25:
            flag["set"] = True
        return flag["set"]

    session.set_cancel_probe(probe)
    report = session.step()              # unbounded — the probe cuts it off
    assert session.status == "cancelled"
    assert report.done and report.status == "cancelled"
    assert session.stats.visited < 10**6
    assert polls["n"] >= 25

    # The probe is session-local plumbing: it never crosses a pickle
    # boundary (a resumed copy polls nothing and runs to its budget).
    fresh = _session(task, _config(task, budget=60))
    fresh.set_cancel_probe(lambda: True)
    clone = SynthesisSession.resume(fresh.checkpoint())
    assert clone._cancel_probe is None
    clone.run()
    assert clone.status != "cancelled"

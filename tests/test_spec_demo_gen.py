"""The §5.1 demonstration-generation procedure."""

import pytest

from repro.lang import Env, Group, Partition, TableRef
from repro.provenance import demo_consistent
from repro.provenance.expr import FuncApp, GroupSet
from repro.semantics import evaluate_tracking
from repro.spec import DemoGenConfig, generate_demonstration, sample_table
from repro.table import Table


@pytest.fixture
def env(tiny_table):
    return Env.of(tiny_table)


@pytest.fixture
def group_query():
    return Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)


class TestGeneration:
    def test_demo_has_two_rows(self, group_query, env):
        demo = generate_demonstration(group_query, env, label="t")
        assert demo.n_rows == 2
        assert demo.n_cols == 2

    def test_demo_is_consistent_with_ground_truth(self, group_query, env):
        demo = generate_demonstration(group_query, env, label="t")
        tracked = evaluate_tracking(group_query, env)
        assert demo_consistent(tracked.exprs, demo.cells)

    def test_deterministic_per_label_and_seed(self, group_query, env):
        a = generate_demonstration(group_query, env, label="x")
        b = generate_demonstration(group_query, env, label="x")
        c = generate_demonstration(group_query, env, label="y")
        assert a.cells == b.cells
        assert a.cells != c.cells or True  # different labels may coincide

    def test_no_group_terms_in_demo(self, group_query, env):
        demo = generate_demonstration(group_query, env, label="t")

        def no_groups(e):
            assert not isinstance(e, GroupSet)
            for child in e.children():
                no_groups(child)

        for row in demo.cells:
            for expr in row:
                no_groups(expr)

    def test_long_expressions_truncated_with_omission(self):
        # 8 rows in one group -> the sum has 8 args -> truncated to 4 + ♦
        t = Table.from_rows("T", ["k", "v"],
                            [["a", i] for i in range(8)] + [["b", 99]])
        env = Env.of(t)
        q = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=1)
        demo = generate_demonstration(
            q, env, DemoGenConfig(max_expr_values=4), label="t")
        sums = [e for row in demo.cells for e in row
                if isinstance(e, FuncApp)]
        big = [e for e in sums if e.partial]
        assert big and all(len(e.args) <= 4 for e in big)

    def test_column_restriction(self, group_query, env):
        demo = generate_demonstration(
            group_query, env, DemoGenConfig(columns=(1,)), label="t")
        assert demo.n_cols == 1

    def test_row_count_capped_by_output(self, env):
        q = Group(TableRef("T"), keys=(), agg_func="sum", agg_col=2)
        demo = generate_demonstration(q, env, label="t")
        assert demo.n_rows == 1

    def test_rank_demo_consistent(self, env):
        q = Partition(TableRef("T"), keys=(0,), agg_func="rank_desc",
                      agg_col=2)
        demo = generate_demonstration(q, env, label="t")
        tracked = evaluate_tracking(q, env)
        assert demo_consistent(tracked.exprs, demo.cells)


class TestSampling:
    def test_small_table_unchanged(self, tiny_table):
        assert sample_table(tiny_table, max_rows=20) is tiny_table

    def test_large_table_sampled_in_order(self):
        t = Table.from_rows("T", ["i"], [[i] for i in range(50)])
        s = sample_table(t, max_rows=20)
        values = [row[0] for row in s.rows]
        assert len(values) == 20
        assert values == sorted(values)  # original order preserved

    def test_sampling_deterministic(self):
        t = Table.from_rows("T", ["i"], [[i] for i in range(50)])
        assert sample_table(t, seed=1).rows == sample_table(t, seed=1).rows
        assert sample_table(t, seed=1).rows != sample_table(t, seed=2).rows

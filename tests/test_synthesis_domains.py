"""Hole-domain inference."""

import pytest

from repro.lang import (
    Arithmetic,
    Env,
    Filter,
    Group,
    Hole,
    Join,
    Partition,
    Proj,
    Sort,
    TableRef,
)
from repro.lang.predicates import ColCmp, ConstCmp
from repro.synthesis import SynthesisConfig
from repro.synthesis.domains import hole_domain
from repro.table import Table
from repro.table.schema import ForeignKey

H = Hole
CFG = SynthesisConfig()


@pytest.fixture
def env(tiny_table):
    return Env.of(tiny_table)


class TestGroupDomains:
    def test_keys_are_subsets(self, env):
        q = Group(TableRef("T"), keys=H("keys"), agg_func=H("agg_func"),
                  agg_col=H("agg_col"))
        domain = hole_domain(q, ((), "keys"), env, CFG)
        assert () in domain          # global aggregation allowed
        assert (0, 1) in domain
        assert (0, 1, 2) not in domain  # must leave an aggregation target

    def test_keys_capped_by_config(self, env):
        q = Group(TableRef("T"), keys=H("keys"), agg_func=H("agg_func"),
                  agg_col=H("agg_col"))
        config = SynthesisConfig(max_key_cols=1)
        domain = hole_domain(q, ((), "keys"), env, config)
        assert all(len(k) <= 1 for k in domain)

    def test_agg_col_excludes_keys(self, env):
        q = Group(TableRef("T"), keys=(0, 1), agg_func=H("agg_func"),
                  agg_col=H("agg_col"))
        assert hole_domain(q, ((), "agg_col"), env, CFG) == [2]

    def test_agg_func_numeric_column(self, env):
        q = Group(TableRef("T"), keys=(0,), agg_func=H("agg_func"), agg_col=2)
        domain = hole_domain(q, ((), "agg_func"), env, CFG)
        assert set(domain) == {"sum", "avg", "max", "min", "count"}

    def test_agg_func_string_column_only_count(self, env):
        q = Group(TableRef("T"), keys=(1,), agg_func=H("agg_func"), agg_col=0)
        assert hole_domain(q, ((), "agg_func"), env, CFG) == ["count"]


class TestPartitionDomains:
    def test_analytic_functions_offered(self, env):
        q = Partition(TableRef("T"), keys=(0,), agg_func=H("agg_func"),
                      agg_col=2)
        domain = hole_domain(q, ((), "agg_func"), env, CFG)
        for name in ("cumsum", "rank", "dense_rank", "sum"):
            assert name in domain


class TestArithmeticDomains:
    def test_cols_numeric_ordered_pairs(self, env):
        q = Arithmetic(TableRef("T"), func=H("func"), cols=H("cols"))
        domain = hole_domain(q, ((), "cols"), env, CFG)
        assert (1, 2) in domain and (2, 1) in domain
        assert all(0 not in pair for pair in domain)  # ID is a string col

    def test_swapped_pair_skips_commutative_funcs(self, env):
        q = Arithmetic(TableRef("T"), func=H("func"), cols=(2, 1))
        domain = hole_domain(q, ((), "func"), env, CFG)
        assert "add" not in domain and "mul" not in domain
        assert "sub" in domain and "div" in domain

    def test_ordered_pair_gets_all_funcs(self, env):
        q = Arithmetic(TableRef("T"), func=H("func"), cols=(1, 2))
        domain = hole_domain(q, ((), "func"), env, CFG)
        assert "add" in domain and "div" in domain


class TestFilterDomains:
    def test_includes_const_predicates(self, env):
        config = SynthesisConfig(constants=(15, "A"))
        q = Filter(TableRef("T"), pred=H("pred"))
        domain = hole_domain(q, ((), "pred"), env, config)
        assert ConstCmp(2, ">", 15) in domain
        assert ConstCmp(0, "==", "A") in domain

    def test_col_pairs_are_opt_in(self, env):
        config = SynthesisConfig(constants=(15,), filter_col_pairs=True)
        q = Filter(TableRef("T"), pred=H("pred"))
        assert ColCmp(1, "<", 2) in hole_domain(q, ((), "pred"), env, config)
        assert ColCmp(1, "<", 2) not in hole_domain(q, ((), "pred"), env, CFG)

    def test_no_constants_empty_default_domain(self, env):
        q = Filter(TableRef("T"), pred=H("pred"))
        assert hole_domain(q, ((), "pred"), env, CFG) == []

    def test_string_columns_only_equality(self, env):
        config = SynthesisConfig(constants=("A",))
        q = Filter(TableRef("T"), pred=H("pred"))
        domain = hole_domain(q, ((), "pred"), env, config)
        string_preds = [p for p in domain
                        if isinstance(p, ConstCmp) and p.const == "A"]
        assert {p.op for p in string_preds} == {"=="}


class TestJoinDomains:
    def test_fk_based_predicates(self):
        customers = Table.from_rows("customers", ["id", "name"],
                                    [[1, "x"]], primary_key=["id"])
        orders = Table.from_rows(
            "orders", ["oid", "cid"], [[1, 1]],
            foreign_keys=[ForeignKey("cid", "customers", "id")])
        env = Env.of(orders, customers)
        q = Join(TableRef("orders"), TableRef("customers"), pred=H("pred"))
        domain = hole_domain(q, ((), "pred"), env, CFG)
        assert domain == [ColCmp(1, "==", 2)]

    def test_same_name_fallback(self, tiny_table):
        other = Table.from_rows("N", ["ID", "Extra"], [["A", 1]])
        env = Env.of(tiny_table, other)
        q = Join(TableRef("T"), TableRef("N"), pred=H("pred"))
        domain = hole_domain(q, ((), "pred"), env, CFG)
        assert ColCmp(0, "==", 3) in domain


class TestSortProjDomains:
    def test_sort_single_columns(self, env):
        q = Sort(TableRef("T"), cols=H("cols"), ascending=H("ascending"))
        domain = hole_domain(q, ((), "cols"), env, CFG)
        assert all(len(c) == 1 for c in domain)
        assert hole_domain(q, ((), "ascending"), env, CFG) == [True, False]

    def test_proj_all_subsets(self, env):
        q = Proj(TableRef("T"), cols=H("cols"))
        domain = hole_domain(q, ((), "cols"), env, CFG)
        assert (0,) in domain and (0, 1, 2) in domain


class TestNestedPaths:
    def test_domain_for_inner_node(self, env):
        inner = Group(TableRef("T"), keys=H("keys"), agg_func=H("agg_func"),
                      agg_col=H("agg_col"))
        outer = Arithmetic(inner, func=H("func"), cols=H("cols"))
        domain = hole_domain(outer, ((0,), "keys"), env, CFG)
        assert (0,) in domain

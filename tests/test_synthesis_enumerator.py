"""Algorithm 1: the enumerative search loop end to end (small scales)."""

import pytest

from repro.abstraction import NoAbstraction
from repro.lang import Env, Group, Partition, TableRef
from repro.provenance import Demonstration, cell, func
from repro.semantics import evaluate
from repro.synthesis import (
    SynthesisConfig,
    Synthesizer,
    same_output,
    synthesize,
)


@pytest.fixture
def env(tiny_table):
    return Env.of(tiny_table)


@pytest.fixture
def sum_demo():
    """Demonstrates 'sum Sales per ID' on the intro table."""
    return Demonstration.of([
        [cell("T", 0, 0), func("sum", cell("T", 0, 2), cell("T", 1, 2),
                               cell("T", 2, 2))],
        [cell("T", 3, 0), func("sum", cell("T", 3, 2), cell("T", 4, 2))],
    ])


class TestBasicSynthesis:
    def test_finds_group_sum(self, tiny_table, sum_demo):
        config = SynthesisConfig(max_operators=1, timeout_s=10)
        result = synthesize([tiny_table], sum_demo, config=config)
        assert result.queries
        top = result.queries[0]
        assert isinstance(top, Group)
        assert top.agg_func == "sum" and top.keys == (0,)

    def test_all_results_are_consistent(self, tiny_table, sum_demo, env):
        from repro.provenance import demo_consistent
        from repro.semantics import evaluate_tracking
        config = SynthesisConfig(max_operators=1, timeout_s=10)
        result = synthesize([tiny_table], sum_demo, config=config)
        for q in result.queries:
            tracked = evaluate_tracking(q, env)
            assert demo_consistent(tracked.exprs, sum_demo.cells)

    def test_top_n_limits_results(self, tiny_table, sum_demo):
        config = SynthesisConfig(max_operators=2, timeout_s=10, top_n=3)
        result = synthesize([tiny_table], sum_demo, config=config)
        assert len(result.queries) <= 3

    def test_stop_predicate_mode(self, tiny_table, sum_demo, env):
        gt = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        config = SynthesisConfig(max_operators=1, timeout_s=10)
        result = synthesize([tiny_table], sum_demo, config=config,
                            stop_predicate=lambda q: same_output(q, gt, env))
        assert result.solved
        assert same_output(result.target, gt, env)
        assert result.target_rank is not None

    def test_timeout_flag(self, tiny_table, sum_demo):
        config = SynthesisConfig(max_operators=3, timeout_s=0.0)
        result = synthesize([tiny_table], sum_demo, config=config)
        assert result.stats.timed_out

    def test_max_visited_budget(self, tiny_table, sum_demo):
        config = SynthesisConfig(max_operators=2, max_visited=5)
        result = synthesize([tiny_table], sum_demo, config=config)
        assert result.stats.visited <= 5
        assert result.stats.timed_out


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["sized_dfs", "bfs", "dfs"])
    def test_all_strategies_find_the_query(self, tiny_table, sum_demo, env,
                                           strategy):
        gt = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        config = SynthesisConfig(max_operators=1, timeout_s=20,
                                 strategy=strategy)
        result = synthesize([tiny_table], sum_demo, config=config,
                            stop_predicate=lambda q: same_output(q, gt, env))
        assert result.solved

    def test_search_order_same_across_abstractions(self, tiny_table,
                                                   sum_demo):
        """§5.1: identical enumeration order for every technique — the
        consistent queries (which no abstraction may prune) come out in the
        same order."""
        config = SynthesisConfig(max_operators=1, timeout_s=20, top_n=50)
        orders = []
        for abstraction in ("provenance", "value", "type", "none"):
            result = synthesize([tiny_table], sum_demo,
                                abstraction=abstraction, config=config)
            orders.append(result.queries)
        assert orders[0] == orders[1] == orders[2] == orders[3]


class TestPruningSoundness:
    def test_no_abstraction_baseline_agrees(self, tiny_table, sum_demo):
        """Pruning must never lose a consistent query (Property 2)."""
        config = SynthesisConfig(max_operators=1, timeout_s=20, top_n=50,
                                 shape_precheck=False)
        pruned = synthesize([tiny_table], sum_demo, abstraction="provenance",
                            config=config)
        free = synthesize([tiny_table], sum_demo, abstraction=NoAbstraction(),
                          config=config)
        assert set(pruned.queries) == set(free.queries)

    def test_provenance_visits_fewer(self, tiny_table, sum_demo):
        config = SynthesisConfig(max_operators=2, timeout_s=20, top_n=10)
        pruned = synthesize([tiny_table], sum_demo, abstraction="provenance",
                            config=config)
        free = synthesize([tiny_table], sum_demo, abstraction="none",
                          config=config)
        assert pruned.stats.visited <= free.stats.visited


class TestSynthesizerFacade:
    def test_reset_clears_caches(self, tiny_table, sum_demo):
        synth = Synthesizer("provenance",
                            SynthesisConfig(max_operators=1, timeout_s=10))
        first = synth.run([tiny_table], sum_demo)
        synth.reset()
        second = synth.run([tiny_table], sum_demo)
        assert [q for q in first.queries] == [q for q in second.queries]

    def test_unknown_abstraction_rejected(self):
        with pytest.raises(ValueError):
            Synthesizer("magic")


class TestPartitionSynthesis:
    def test_finds_cumsum(self, tiny_table, env):
        gt = Partition(TableRef("T"), keys=(0,), agg_func="cumsum", agg_col=2)
        from repro.spec import generate_demonstration
        demo = generate_demonstration(gt, env, label="test-cumsum")
        config = SynthesisConfig(max_operators=1, timeout_s=15)
        result = synthesize([tiny_table], demo, config=config,
                            stop_predicate=lambda q: same_output(q, gt, env))
        assert result.solved

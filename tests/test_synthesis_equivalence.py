"""Ground-truth equivalence checking and ranking."""

import pytest

from repro.lang import Arithmetic, Env, Group, Partition, Proj, TableRef
from repro.synthesis import rank_queries, same_output
from repro.synthesis.equivalence import tables_equivalent
from repro.synthesis.ranking import rank_of
from repro.table import Table


@pytest.fixture
def env(tiny_table):
    return Env.of(tiny_table)


class TestTablesEquivalent:
    def test_identical(self):
        a = Table.from_rows("a", ["x", "y"], [[1, 2], [3, 4]])
        assert tables_equivalent(a, a)

    def test_column_order_free(self):
        a = Table.from_rows("a", ["x", "y"], [[1, 2], [3, 4]])
        b = Table.from_rows("b", ["y", "x"], [[2, 1], [4, 3]])
        assert tables_equivalent(a, b)

    def test_row_order_free(self):
        a = Table.from_rows("a", ["x"], [[1], [2]])
        b = Table.from_rows("b", ["x"], [[2], [1]])
        assert tables_equivalent(a, b)

    def test_candidate_may_have_extra_columns(self):
        ref = Table.from_rows("a", ["x"], [[1], [2]])
        cand = Table.from_rows("b", ["k", "x"], [["p", 1], ["q", 2]])
        assert tables_equivalent(ref, cand)

    def test_extra_rows_reject(self):
        ref = Table.from_rows("a", ["x"], [[1]])
        cand = Table.from_rows("b", ["x"], [[1], [1]])
        assert not tables_equivalent(ref, cand)

    def test_row_association_must_hold(self):
        # same column multisets but rows pair differently
        ref = Table.from_rows("a", ["x", "y"], [[1, 4], [2, 3]])
        cand = Table.from_rows("b", ["x", "y"], [[1, 3], [2, 4]])
        assert not tables_equivalent(ref, cand)

    def test_duplicate_column_content(self):
        ref = Table.from_rows("a", ["x", "y"], [[1, 1], [2, 2]])
        cand = Table.from_rows("b", ["p", "q"], [[1, 1], [2, 2]])
        assert tables_equivalent(ref, cand)


class TestSameOutput:
    def test_group_key_order_immaterial(self, env):
        a = Group(TableRef("T"), keys=(0, 1), agg_func="sum", agg_col=2)
        b = Group(TableRef("T"), keys=(1, 0), agg_func="sum", agg_col=2)
        assert same_output(a, b, env)

    def test_projection_of_candidate_ok(self, env):
        gt = Proj(Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2),
                  cols=(1,))
        candidate = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        assert same_output(candidate, gt, env)

    def test_different_aggregates_differ(self, env):
        a = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        b = Group(TableRef("T"), keys=(0,), agg_func="avg", agg_col=2)
        assert not same_output(a, b, env)

    def test_partition_vs_group_differ(self, env):
        a = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        b = Partition(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        assert not same_output(a, b, env)


class TestRanking:
    def test_rank_by_size_stable(self, env):
        small = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        big = Arithmetic(small, func="mul", cols=(1, 1))
        ranked = rank_queries([big, small])
        assert ranked == [small, big]

    def test_rank_of(self):
        a = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        b = Group(TableRef("T"), keys=(1,), agg_func="sum", agg_col=2)
        assert rank_of([a, b], b) == 2
        assert rank_of([a, b], a) == 1
        other = Group(TableRef("T"), keys=(0, 1), agg_func="avg", agg_col=2)
        assert rank_of([a, b], other) is None

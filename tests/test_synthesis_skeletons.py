"""Skeleton construction and the expression-shape precheck."""

import pytest

from repro.lang import Arithmetic, Env, Group, Join, Partition, Sort, TableRef
from repro.lang.holes import holes_of
from repro.lang.size import operator_count
from repro.provenance import Demonstration, cell, func, partial_func
from repro.synthesis import SynthesisConfig, construct_skeletons
from repro.synthesis.shape import (
    function_paths,
    operator_chain,
    shape_feasible,
)
from repro.table import Table


@pytest.fixture
def env(tiny_table):
    return Env.of(tiny_table)


class TestConstruction:
    def test_sizes_respect_budget(self, env):
        config = SynthesisConfig(max_operators=2)
        skeletons = construct_skeletons(env, config)
        assert skeletons
        assert all(1 <= operator_count(s) <= 2 for s in skeletons)

    def test_emitted_smallest_first(self, env):
        config = SynthesisConfig(max_operators=3)
        sizes = [operator_count(s) for s in construct_skeletons(env, config)]
        assert sizes == sorted(sizes)

    def test_all_parameters_are_holes(self, env):
        config = SynthesisConfig(max_operators=2)
        for skeleton in construct_skeletons(env, config):
            for node in skeleton.walk():
                if not isinstance(node, TableRef):
                    assert any(path or field
                               for path, field in holes_of(skeleton))

    def test_operator_pool_respected(self, env):
        config = SynthesisConfig(max_operators=2,
                                 operator_pool=("group", "arithmetic"))
        for skeleton in construct_skeletons(env, config):
            for node in skeleton.walk():
                assert not isinstance(node, (Partition, Sort))

    def test_sort_only_before_grouping_ops(self, env):
        config = SynthesisConfig(
            max_operators=3,
            operator_pool=("group", "partition", "arithmetic", "sort"))
        for skeleton in construct_skeletons(env, config):
            nodes = list(skeleton.walk())
            for below, above in zip(nodes, nodes[1:]):
                if isinstance(below, Sort):
                    assert isinstance(above, (Group, Partition))

    def test_join_trees_for_multi_table(self, tiny_table):
        other = Table.from_rows("N", ["ID", "X"], [["A", 1]])
        env = Env.of(tiny_table, other)
        config = SynthesisConfig(max_operators=2)
        skeletons = construct_skeletons(env, config)
        joins = [s for s in skeletons
                 if any(isinstance(n, Join) for n in s.walk())]
        assert joins
        # a join costs one operator
        assert all(operator_count(s) >= 1 for s in joins)

    def test_deterministic(self, env):
        config = SynthesisConfig(max_operators=3)
        assert construct_skeletons(env, config) == \
            construct_skeletons(env, config)


class TestFunctionPaths:
    def test_leaf_has_no_path(self):
        assert function_paths(cell("T", 0, 0)) == []

    def test_single_application(self):
        assert function_paths(func("sum", cell("T", 0, 0))) == [("aggregate",)]

    def test_nested_paths(self):
        # only maximal paths are emitted; ("arithmetic",) alone is subsumed
        e = func("percent", func("sum", cell("T", 0, 0)), cell("T", 0, 1))
        assert function_paths(e) == [("arithmetic", "aggregate")]

    def test_two_function_args_give_two_paths(self):
        e = func("div", func("sum", cell("T", 0, 0)),
                 func("max", cell("T", 0, 1)))
        assert function_paths(e) == [("arithmetic", "aggregate"),
                                     ("arithmetic", "aggregate")]

    def test_rank_kind(self):
        e = partial_func("rank", cell("T", 0, 0))
        assert function_paths(e) == [("ranker",)]


class TestShapeFeasible:
    def _demo(self):
        return Demonstration.of([[
            cell("T", 0, 0),
            func("percent", func("sum", cell("T", 0, 2)), cell("T", 0, 1)),
        ]])

    def test_needs_arith_above_aggregation(self):
        from repro.lang import Hole
        H = Hole
        good = Arithmetic(Group(TableRef("T"), keys=H("k"), agg_func=H("f"),
                                agg_col=H("c")), func=H("f"), cols=H("c"))
        bad_order = Group(Arithmetic(TableRef("T"), func=H("f"),
                                     cols=H("c")), keys=H("k"),
                          agg_func=H("f"), agg_col=H("c"))
        only_groups = Group(Group(TableRef("T"), keys=H("k"), agg_func=H("f"),
                                  agg_col=H("c")), keys=H("k"),
                            agg_func=H("f"), agg_col=H("c"))
        demo = self._demo()
        assert shape_feasible(good, demo)
        assert not shape_feasible(bad_order, demo)
        assert not shape_feasible(only_groups, demo)

    def test_ranker_requires_partition(self):
        from repro.lang import Hole
        H = Hole
        demo = Demonstration.of([[partial_func("rank", cell("T", 0, 2))]])
        group_only = Group(TableRef("T"), keys=H("k"), agg_func=H("f"),
                           agg_col=H("c"))
        partition = Partition(TableRef("T"), keys=H("k"), agg_func=H("f"),
                              agg_col=H("c"))
        assert not shape_feasible(group_only, demo)
        assert shape_feasible(partition, demo)

    def test_plain_refs_unconstrained(self):
        demo = Demonstration.of([[cell("T", 0, 0)]])
        assert shape_feasible(TableRef("T"), demo)

    def test_operator_chain_skips_non_producers(self):
        from repro.lang import Filter, Hole
        H = Hole
        q = Arithmetic(Filter(Group(TableRef("T"), keys=H("k"),
                                    agg_func=H("f"), agg_col=H("c")),
                              pred=H("p")),
                       func=H("f"), cols=H("c"))
        assert operator_chain(q) == ["group", "arithmetic"]

"""The worklist strategies: fairness, ordering, exhaustion."""

import pytest

from repro.lang import TableRef
from repro.synthesis.enumerator import _Worklist


def _q(name):
    return TableRef(name)


class TestSizedDfs:
    def test_single_lane_is_lifo(self):
        wl = _Worklist("sized_dfs")
        lane = wl.add_lane(_q("root"), 1)
        _, lid, root = wl.pop()
        wl.push(_q("a"), 1, lid)
        wl.push(_q("b"), 1, lid)
        assert wl.pop()[2].name == "b"
        assert wl.pop()[2].name == "a"
        assert not wl

    def test_round_robin_across_lanes(self):
        wl = _Worklist("sized_dfs")
        l1 = wl.add_lane(_q("x1"), 1)
        l2 = wl.add_lane(_q("y1"), 1)
        # pop alternates lanes
        first = wl.pop()
        second = wl.pop()
        assert {first[2].name, second[2].name} == {"x1", "y1"}
        assert first[1] != second[1]

    def test_no_lane_starvation(self):
        wl = _Worklist("sized_dfs")
        big = wl.add_lane(_q("big0"), 1)
        small = wl.add_lane(_q("small0"), 2)
        popped = []
        for step in range(10):
            _, lid, q = wl.pop()
            popped.append(q.name)
            if lid == big:  # the big lane keeps regenerating work
                wl.push(_q(f"big{step + 1}"), 1, big)
        # the small (later, larger-size) lane still got served
        assert "small0" in popped

    def test_exhausted_lanes_dropped(self):
        wl = _Worklist("sized_dfs")
        wl.add_lane(_q("a"), 1)
        wl.add_lane(_q("b"), 1)
        assert wl.pop()[2] is not None
        assert wl.pop()[2] is not None
        assert not wl

    def test_bool_reflects_content(self):
        wl = _Worklist("sized_dfs")
        assert not wl
        lid = wl.add_lane(_q("a"), 1)
        assert wl
        wl.pop()
        assert not wl
        wl.push(_q("b"), 1, lid)
        assert wl


class TestFifoStrategies:
    def test_bfs_order(self):
        wl = _Worklist("bfs")
        lid = wl.add_lane(_q("s1"), 1)
        wl.add_lane(_q("s2"), 1)
        wl.push(_q("c1"), 1, lid)
        names = [wl.pop()[2].name for _ in range(3)]
        assert names == ["s1", "s2", "c1"]

    def test_dfs_order(self):
        wl = _Worklist("dfs")
        lid = wl.add_lane(_q("s1"), 1)
        wl.add_lane(_q("s2"), 1)
        wl.push(_q("c1"), 1, lid)
        names = [wl.pop()[2].name for _ in range(3)]
        assert names == ["c1", "s1", "s2"]

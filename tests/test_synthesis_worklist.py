"""The worklist strategies: fairness, ordering, exhaustion."""

import pytest

from repro.lang import TableRef
from repro.synthesis.enumerator import _Worklist


def _q(name):
    return TableRef(name)


class TestSizedDfs:
    def test_single_lane_is_lifo(self):
        wl = _Worklist("sized_dfs")
        lane = wl.add_lane(_q("root"), 1)
        _, lid, root = wl.pop()
        wl.push(_q("a"), 1, lid)
        wl.push(_q("b"), 1, lid)
        assert wl.pop()[2].name == "b"
        assert wl.pop()[2].name == "a"
        assert not wl

    def test_round_robin_across_lanes(self):
        wl = _Worklist("sized_dfs")
        l1 = wl.add_lane(_q("x1"), 1)
        l2 = wl.add_lane(_q("y1"), 1)
        # pop alternates lanes
        first = wl.pop()
        second = wl.pop()
        assert {first[2].name, second[2].name} == {"x1", "y1"}
        assert first[1] != second[1]

    def test_no_lane_starvation(self):
        wl = _Worklist("sized_dfs")
        big = wl.add_lane(_q("big0"), 1)
        small = wl.add_lane(_q("small0"), 2)
        popped = []
        for step in range(10):
            _, lid, q = wl.pop()
            popped.append(q.name)
            if lid == big:  # the big lane keeps regenerating work
                wl.push(_q(f"big{step + 1}"), 1, big)
        # the small (later, larger-size) lane still got served
        assert "small0" in popped

    def test_exhausted_lanes_dropped(self):
        wl = _Worklist("sized_dfs")
        wl.add_lane(_q("a"), 1)
        wl.add_lane(_q("b"), 1)
        assert wl.pop()[2] is not None
        assert wl.pop()[2] is not None
        assert not wl

    def test_bool_reflects_content(self):
        wl = _Worklist("sized_dfs")
        assert not wl
        lid = wl.add_lane(_q("a"), 1)
        assert wl
        wl.pop()
        assert not wl
        wl.push(_q("b"), 1, lid)
        assert wl


class TestExhaustionHardening:
    """pop() on a drained worklist reports exhaustion, never crashes."""

    @pytest.mark.parametrize("strategy", ["sized_dfs", "bfs", "dfs"])
    def test_pop_empty_raises_index_error(self, strategy):
        wl = _Worklist(strategy)
        with pytest.raises(IndexError):
            wl.pop()

    @pytest.mark.parametrize("strategy", ["sized_dfs", "bfs", "dfs"])
    def test_pop_after_drain_raises_index_error(self, strategy):
        wl = _Worklist(strategy)
        wl.add_lane(_q("a"), 1)
        wl.add_lane(_q("b"), 1)
        wl.pop()
        wl.pop()
        # Historically this died with ZeroDivisionError (lane-drop loop
        # re-indexing into an emptied lane list) under sized_dfs.
        with pytest.raises(IndexError):
            wl.pop()

    def test_last_live_lane_draining_mid_scan(self):
        # Force the lane-drop loop to walk over several exhausted lanes and
        # delete the final one mid-scan.
        wl = _Worklist("sized_dfs")
        lanes = [wl.add_lane(_q(f"s{i}"), 1) for i in range(3)]
        for _ in lanes:
            wl.pop()
        assert not wl
        # Desynchronize on purpose: stacks are empty but a stale count could
        # send a caller back into pop(); it must fail cleanly.
        wl._count = 1
        with pytest.raises(IndexError):
            wl.pop()
        assert wl._count == 0
        assert not wl

    def test_drop_scan_continues_to_live_lane(self):
        wl = _Worklist("sized_dfs")
        a = wl.add_lane(_q("a"), 1)
        b = wl.add_lane(_q("b"), 1)
        c = wl.add_lane(_q("c"), 1)
        # Empty lanes a and b by popping their single items; lane c stays.
        popped = {wl.pop()[2].name for _ in range(2)}
        assert popped <= {"a", "b", "c"}
        # Whatever remains must still be reachable through the drop scan.
        assert wl.pop()[2] is not None
        assert not wl


class TestFifoStrategies:
    def test_bfs_order(self):
        wl = _Worklist("bfs")
        lid = wl.add_lane(_q("s1"), 1)
        wl.add_lane(_q("s2"), 1)
        wl.push(_q("c1"), 1, lid)
        names = [wl.pop()[2].name for _ in range(3)]
        assert names == ["s1", "s2", "c1"]

    def test_dfs_order(self):
        wl = _Worklist("dfs")
        lid = wl.add_lane(_q("s1"), 1)
        wl.add_lane(_q("s2"), 1)
        wl.push(_q("c1"), 1, lid)
        names = [wl.pop()[2].name for _ in range(3)]
        assert names == ["c1", "s1", "s2"]

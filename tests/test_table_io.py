"""CSV round-tripping and pretty printing."""

from repro.table import Table
from repro.table.io import dump_csv, format_table, load_csv


class TestCsv:
    def test_round_trip(self, tiny_table):
        text = dump_csv(tiny_table)
        back = load_csv("T", text)
        assert back.same_rows(tiny_table)
        assert back.columns == tiny_table.columns

    def test_parse_types(self):
        t = load_csv("t", "a,b,c,d\n1,2.5,x,true\n,3,y,false\n")
        assert t.cell(0, 0) == 1
        assert t.cell(0, 1) == 2.5
        assert t.cell(0, 2) == "x"
        assert t.cell(0, 3) is True
        assert t.cell(1, 0) is None

    def test_null_round_trip(self):
        t = Table.from_rows("t", ["a", "b"], [[None, 1]])
        back = load_csv("t", dump_csv(t))
        assert back.cell(0, 0) is None

    def test_load_with_keys(self):
        t = load_csv("t", "id,x\n1,2\n", primary_key=["id"])
        assert t.schema.primary_key == ("id",)


class TestFormat:
    def test_contains_header_and_values(self, tiny_table):
        text = format_table(tiny_table)
        assert "ID" in text and "Sales" in text
        assert "20" in text

    def test_truncates_long_tables(self):
        t = Table.from_rows("t", ["x"], [[i] for i in range(100)])
        text = format_table(t, max_rows=5)
        assert "more rows" in text

    def test_null_rendering(self):
        t = Table.from_rows("t", ["x"], [[None]])
        assert "NULL" in format_table(t)

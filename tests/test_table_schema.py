"""Schemas, type inference and key metadata."""

import pytest

from repro.errors import SchemaError
from repro.table.schema import ForeignKey, Schema, infer_type


class TestInferType:
    def test_uniform_numbers(self):
        assert infer_type([1, 2.5, 3]) == "number"

    def test_strings(self):
        assert infer_type(["a", "b"]) == "string"

    def test_nulls_ignored(self):
        assert infer_type([None, 4, None]) == "number"

    def test_all_null(self):
        assert infer_type([None, None]) == "null"

    def test_mixed(self):
        assert infer_type([1, "a"]) == "mixed"

    def test_bool(self):
        assert infer_type([True, False]) == "bool"


class TestSchema:
    def test_index_of(self):
        s = Schema(("a", "b"), ("number", "string"))
        assert s.index_of("b") == 1

    def test_index_of_missing(self):
        s = Schema(("a",), ("number",))
        with pytest.raises(SchemaError):
            s.index_of("z")

    def test_type_of_by_name_and_index(self):
        s = Schema(("a", "b"), ("number", "string"))
        assert s.type_of("b") == "string"
        assert s.type_of(0) == "number"

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema(("a", "a"), ("number", "number"))

    def test_types_must_be_parallel(self):
        with pytest.raises(SchemaError):
            Schema(("a", "b"), ("number",))

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            Schema(("a",), ("number",), primary_key=("z",))

    def test_foreign_key_column_must_exist(self):
        with pytest.raises(SchemaError):
            Schema(("a",), ("number",),
                   foreign_keys=(ForeignKey("z", "other", "id"),))

    def test_valid_keys(self):
        s = Schema(("id", "ref"), ("number", "number"),
                   primary_key=("id",),
                   foreign_keys=(ForeignKey("ref", "other", "id"),))
        assert s.primary_key == ("id",)
        assert s.foreign_keys[0].ref_table == "other"

    def test_arity(self):
        assert Schema(("a", "b", "c"), ("null",) * 3).arity == 3

"""Unit tests for the ordered-bag table."""

import pytest

from repro.errors import SchemaError, TableError
from repro.table import Table
from repro.table.schema import ForeignKey, Schema


class TestConstruction:
    def test_from_rows_infers_types(self, tiny_table):
        assert tiny_table.schema.types == ("string", "number", "number")

    def test_ragged_rows_rejected(self):
        with pytest.raises(TableError):
            Table.from_rows("t", ["a", "b"], [[1, 2], [3]])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_rows("t", ["a", "a"], [[1, 2]])

    def test_empty_table(self):
        t = Table.from_rows("t", ["a"], [])
        assert t.n_rows == 0
        assert t.schema.types == ("null",)

    def test_with_name(self, tiny_table):
        renamed = tiny_table.with_name("S")
        assert renamed.name == "S"
        assert renamed.rows == tiny_table.rows

    def test_primary_key_metadata(self):
        t = Table.from_rows("t", ["id", "x"], [[1, 2]], primary_key=["id"])
        assert t.schema.primary_key == ("id",)

    def test_foreign_key_metadata(self):
        fk = ForeignKey("cid", "customers", "id")
        t = Table.from_rows("t", ["cid"], [[1]], foreign_keys=[fk])
        assert t.schema.foreign_keys == (fk,)


class TestAccessors:
    def test_cell(self, tiny_table):
        assert tiny_table.cell(0, 0) == "A"
        assert tiny_table.cell(4, 2) == 15

    def test_column_values_by_name(self, tiny_table):
        assert tiny_table.column_values("Sales") == [10, 20, 15, 20, 15]

    def test_col_index_name(self, tiny_table):
        assert tiny_table.col_index("Quarter") == 1

    def test_col_index_out_of_range(self, tiny_table):
        with pytest.raises(TableError):
            tiny_table.col_index(9)

    def test_col_index_unknown_name(self, tiny_table):
        with pytest.raises(SchemaError):
            tiny_table.col_index("Nope")


class TestOperations:
    def test_project_reorders(self, tiny_table):
        p = tiny_table.project([2, 0])
        assert p.columns == ("Sales", "ID")
        assert p.rows[0] == (10, "A")

    def test_project_duplicate_column_renames(self, tiny_table):
        p = tiny_table.project([0, 0])
        assert len(set(p.columns)) == 2

    def test_cross_product(self, tiny_table):
        other = Table.from_rows("u", ["K"], [[1], [2]])
        crossed = tiny_table.cross(other)
        assert crossed.n_rows == 10
        assert crossed.n_cols == 4

    def test_cross_renames_clashes(self, tiny_table):
        other = Table.from_rows("u", ["ID"], [[1]])
        crossed = tiny_table.cross(other)
        assert len(set(crossed.columns)) == 4

    def test_cross_with_itself_is_collision_free(self, tiny_table):
        # Self-cross: every right-hand column clashes, and the qualified
        # "{name}.{col}" fallback would clash again on a second cross.
        once = tiny_table.cross(tiny_table)
        assert len(set(once.columns)) == once.n_cols == 6
        twice = once.cross(tiny_table)
        assert len(set(twice.columns)) == twice.n_cols == 9

    def test_cross_renaming_survives_prequalified_columns(self):
        # The left table already holds the "u.K" name the rename would pick.
        left = Table.from_rows("l", ["K", "u.K"], [[1, 2]])
        right = Table.from_rows("u", ["K"], [[3]])
        crossed = left.cross(right)
        assert len(set(crossed.columns)) == 3
        assert crossed.rows == ((1, 2, 3),)

    def test_cross_renaming_is_deterministic(self, tiny_table):
        a = tiny_table.cross(tiny_table)
        b = tiny_table.cross(tiny_table)
        assert a.columns == b.columns

    def test_take_rows(self, tiny_table):
        t = tiny_table.take_rows([4, 0])
        assert t.rows[0][2] == 15
        assert t.rows[1][0] == "A"


class TestBagEquality:
    def test_same_rows_ignores_order(self, tiny_table):
        reordered = tiny_table.take_rows([4, 3, 2, 1, 0])
        assert tiny_table.same_rows(reordered)

    def test_same_rows_respects_multiplicity(self):
        a = Table.from_rows("a", ["x"], [[1], [1], [2]])
        b = Table.from_rows("b", ["x"], [[1], [2], [2]])
        assert not a.same_rows(b)

    def test_same_rows_float_int(self):
        a = Table.from_rows("a", ["x"], [[1], [2]])
        b = Table.from_rows("b", ["x"], [[1.0], [2.0]])
        assert a.same_rows(b)

    def test_contains_rows(self, tiny_table):
        subset = tiny_table.take_rows([1, 3])
        assert tiny_table.contains_rows(subset)
        assert not subset.contains_rows(tiny_table)

    def test_contains_cell_value(self, tiny_table):
        assert tiny_table.contains_cell_value(20)
        assert not tiny_table.contains_cell_value(999)

"""Unit tests for cell value comparison semantics."""

import math

from repro.table.values import (
    canonical,
    is_numeric,
    row_eq,
    value_eq,
    value_lt,
    value_sort_key,
    value_type,
)


class TestIsNumeric:
    def test_int(self):
        assert is_numeric(3)

    def test_float(self):
        assert is_numeric(3.5)

    def test_bool_is_not_numeric(self):
        assert not is_numeric(True)

    def test_none(self):
        assert not is_numeric(None)

    def test_string(self):
        assert not is_numeric("3")


class TestValueType:
    def test_null(self):
        assert value_type(None) == "null"

    def test_bool(self):
        assert value_type(False) == "bool"

    def test_number(self):
        assert value_type(7) == "number"
        assert value_type(7.5) == "number"

    def test_string(self):
        assert value_type("x") == "string"


class TestValueEq:
    def test_ints(self):
        assert value_eq(3, 3)
        assert not value_eq(3, 4)

    def test_int_float_cross(self):
        assert value_eq(2, 2.0)

    def test_float_tolerance(self):
        assert value_eq(0.1 + 0.2, 0.3)

    def test_null_only_equals_null(self):
        assert value_eq(None, None)
        assert not value_eq(None, 0)
        assert not value_eq("", None)

    def test_strings(self):
        assert value_eq("a", "a")
        assert not value_eq("a", "b")

    def test_string_vs_number(self):
        assert not value_eq("3", 3)

    def test_bool_vs_int(self):
        # bools are a distinct type class in our value model
        assert not value_eq(True, 1)


class TestOrdering:
    def test_numbers(self):
        assert value_lt(1, 2)
        assert not value_lt(2, 1)

    def test_numbers_before_strings(self):
        assert value_lt(10**9, "a")

    def test_null_sorts_last(self):
        assert value_lt("zzz", None)
        assert not value_lt(None, 0)

    def test_sort_key_total_order(self):
        values = [None, "b", 3, 1.5, "a", True]
        ordered = sorted(values, key=value_sort_key)
        assert ordered == [1.5, 3, "a", "b", True, None]


class TestRowEq:
    def test_equal(self):
        assert row_eq([1, "a", None], [1.0, "a", None])

    def test_length_mismatch(self):
        assert not row_eq([1], [1, 2])

    def test_value_mismatch(self):
        assert not row_eq([1, 2], [1, 3])


class TestCanonical:
    def test_integral_float_collapses(self):
        assert canonical(2.0) == 2
        assert isinstance(canonical(2.0), int)

    def test_non_integral_float_rounds(self):
        assert canonical(1.23456789012345) == round(1.23456789012345, 9)

    def test_bool_passthrough(self):
        assert canonical(True) is True

    def test_string_passthrough(self):
        assert canonical("s") == "s"

    def test_canonical_consistent_with_eq(self):
        assert canonical(2) == canonical(2.0)

    def test_inf_passthrough(self):
        assert canonical(math.inf) == math.inf

"""Bipartite matching, subsequence matching and grid embedding."""

import pytest

from repro.util.matching import (
    bipartite_match,
    embedding_exists,
    injective_assignment_exists,
    multiset_match,
    subsequence_match,
)


class TestBipartite:
    def test_perfect_matching(self):
        edges = {(0, 1), (1, 0)}
        assign = bipartite_match(2, 2, lambda i, j: (i, j) in edges)
        assert assign == [1, 0]

    def test_augmenting_path_needed(self):
        # both left nodes prefer right 0; one must be rerouted
        edges = {(0, 0), (1, 0), (1, 1)}
        assign = bipartite_match(2, 2, lambda i, j: (i, j) in edges)
        assert assign == [0, 1]

    def test_infeasible(self):
        assert bipartite_match(2, 2, lambda i, j: j == 0) is None

    def test_left_larger_than_right(self):
        assert bipartite_match(3, 2, lambda i, j: True) is None

    def test_injective_exists(self):
        assert injective_assignment_exists(2, 3, lambda i, j: True)
        assert not injective_assignment_exists(2, 2, lambda i, j: i == j == 0)


class TestSubsequence:
    def test_basic(self):
        assert subsequence_match([1, 3], [1, 2, 3], lambda a, b: a == b)
        assert not subsequence_match([3, 1], [1, 2, 3], lambda a, b: a == b)

    def test_empty_needles(self):
        assert subsequence_match([], [1], lambda a, b: a == b)

    def test_needs_backtracking(self):
        # relation where greedy first match fails: needle 'x' matches both
        # haystack slots, 'y' only the first — must NOT consume it with 'x'
        rel = {("x", 0), ("x", 1), ("y", 1)}
        assert subsequence_match(["x", "y"], [0, 1],
                                 lambda a, b: (a, b) in rel)

    def test_too_many_needles(self):
        assert not subsequence_match([1, 1], [1], lambda a, b: a == b)


class TestMultiset:
    def test_subset_mode(self):
        assert multiset_match([1, 2], [2, 1, 3], lambda a, b: a == b)

    def test_exact_mode_requires_bijection(self):
        assert multiset_match([1, 2], [2, 1], lambda a, b: a == b, exact=True)
        assert not multiset_match([1], [1, 1], lambda a, b: a == b,
                                  exact=True)

    def test_distinctness(self):
        # two needles may not share one haystack element
        assert not multiset_match([1, 1], [1, 2], lambda a, b: a == b)


class TestEmbedding:
    def test_simple_embedding(self):
        grid = [["a", "b"], ["c", "d"]]
        demo = [["d"]]
        assert embedding_exists(
            1, 1, 2, 2, lambda i, j, r, c: demo[i][j] == grid[r][c])

    def test_rows_and_columns_injective(self):
        grid = [["a", "a"]]
        demo = [["a"], ["a"]]  # two rows cannot map to one grid row
        assert not embedding_exists(
            2, 1, 1, 2, lambda i, j, r, c: demo[i][j] == grid[r][c])

    def test_column_assignment_backtracks(self):
        # demo col 0 could take grid col 0 or 1; demo col 1 only col 0 —
        # the search must give col 0 to demo col 1.
        grid = [["x", "x"], ["y", "z"]]
        demo = [["x", "x"], ["z", "y"]]
        ok = embedding_exists(
            2, 2, 2, 2,
            lambda i, j, r, c: demo[i][j] == grid[r][c])
        assert ok

    def test_demo_bigger_than_grid(self):
        assert not embedding_exists(3, 1, 2, 2, lambda *a: True)
        assert not embedding_exists(1, 3, 2, 2, lambda *a: True)


class TestBitmaskFromBools:
    def test_sequence_path(self):
        from repro.util.matching import bitmask_from_bools
        assert bitmask_from_bools([True, False, True, True]) == 0b1101
        assert bitmask_from_bools([]) == 0
        assert bitmask_from_bools([False] * 70) == 0

    def test_numpy_masks_feed_bitset_core_without_list_roundtrip(self):
        """A NumPy boolean row mask packs straight into the bitset core's
        integer format — the selection/consistency interop contract."""
        np = pytest.importorskip("numpy")
        from repro.util.matching import (
            bitmask_from_bools,
            bitset_embedding_exists,
            bitset_match,
        )
        rng_rows = [np.array([True, False, True]),
                    np.array([False, True, False]),
                    np.array([True] * 80),          # beyond one word
                    np.zeros(5, dtype=bool)]
        for bools in rng_rows:
            assert bitmask_from_bools(bools) == \
                bitmask_from_bools(list(bools))
        adjacency = [bitmask_from_bools(np.array([True, True, False])),
                     bitmask_from_bools(np.array([False, True, True]))]
        assert bitset_match(adjacency, 3) is not None
        options = [[(0, (bitmask_from_bools(np.array([True, False])),))],
                   [(1, (bitmask_from_bools(np.array([False, True])),))]]
        assert not bitset_embedding_exists(options, 1, 2)
